// Host↔PIM staging cost model + double-buffered staging timeline (S43).
//
// Until S43 the fleet let read batches teleport into the chips' sub-arrays
// for free, so every fleet-scale number was silently optimistic about the
// one path Diab et al. (PAPERS.md, arXiv 2208.01243) measure as the real
// bottleneck on PIM systems: host↔memory transfer. This module prices that
// path and models how much of it a double-buffered host runtime can hide:
//
//   * TransferModel — what staging a shard costs. A read shipped to a chip
//     is its 2-bit-packed bases plus a fixed per-read descriptor; a staged
//     batch pays a fixed serialization cost (driver + DMA setup) plus wire
//     time at the per-chip host-link bandwidth. Per-word wire ENERGY reuses
//     InterconnectModel::transfer_cost at HopLevel::kOffChip — the same
//     CACTI/NVSim-class constants the chip model charges for every other
//     cross-hierarchy byte, so the host link is priced in the same currency.
//
//   * StagingTimeline — when the staged bytes arrive. One timeline per chip
//     advances generation by generation in modeled nanoseconds: with double
//     buffering, generation N+1's transfer overlaps generation N's compute
//     (the UPMEM mram_sequential_reader buffered-access idiom, lifted to the
//     host link); single-buffered, the chip sits idle for every transfer.
//     The per-generation stall — compute idle waiting on data — is exactly
//     the quantity the fleet surfaces as fleet.transfer.*.stall_ns.
//
// Everything here is deterministic model time (derived from byte counts and
// the chips' modeled busy_ns), never wall clock, so transfer numbers are
// reproducible across reruns and hosts — asserted in tests/test_transfer.cpp.
#pragma once

#include <cstdint>

#include "src/pim/interconnect.h"
#include "src/util/config.h"

namespace pim::hw {

/// Cost of staging one shard's payload to one chip.
struct StagingCost {
  std::uint64_t bytes = 0;        ///< Payload actually serialized.
  std::uint64_t words = 0;        ///< 32-bit words on the wire.
  double serialization_ns = 0.0;  ///< Fixed per-staged-batch cost.
  double wire_ns = 0.0;           ///< bytes / per-chip link bandwidth.
  double latency_ns = 0.0;        ///< serialization_ns + wire_ns.
  double energy_pj = 0.0;         ///< Off-chip word energy (interconnect).
};

class TransferModel {
 public:
  /// Defaults overlaid with `overrides`; InterconnectModel keys pass
  /// through, so one Config configures both the link and the word pricing.
  /// Throws std::invalid_argument (naming the key) on non-finite,
  /// non-positive bandwidth or negative fixed costs.
  explicit TransferModel(const util::Config& overrides = {});

  static util::Config default_config();

  /// Staging cost for `payload_bytes` to one chip. Zero bytes is a priced
  /// no-op — no DMA is issued, so not even the serialization cost applies.
  StagingCost staging_cost(std::uint64_t payload_bytes) const;

  /// Wire bytes for one read of `bases` bases: 2-bit-packed payload
  /// (ceil(bases / 4)) plus the per-read descriptor.
  std::uint64_t read_bytes(std::uint64_t bases) const {
    return (bases + 3) / 4 + per_read_header_bytes_;
  }

  /// Per-chip host-link staging bandwidth, GB/s (== bytes/ns).
  double bandwidth_gbs() const { return bandwidth_gbs_; }
  double serialization_ns() const { return serialization_ns_; }
  std::uint64_t per_read_header_bytes() const {
    return per_read_header_bytes_;
  }
  const InterconnectModel& interconnect() const { return interconnect_; }

 private:
  InterconnectModel interconnect_;
  double bandwidth_gbs_ = 16.0;
  double serialization_ns_ = 1500.0;
  std::uint64_t per_read_header_bytes_ = 8;
};

/// Per-chip staging/compute pipeline clock in modeled nanoseconds.
///
/// advance(T, C) appends one generation whose staging takes T ns and whose
/// compute takes C ns, and returns when the chip actually computed it:
///
///   double-buffered: staging of generation g starts once the link is free
///     AND the landing buffer is free (its previous occupant, generation
///     g-2, has been consumed); compute starts when the data has landed and
///     the previous generation's compute finished. Steady state approaches
///     max(T, C) per generation.
///   single-buffered: the chip and the link share the one buffer, so every
///     generation serializes to T + C.
///
/// stall_ns is the compute idle time waiting on data — generation 0's
/// pipeline fill is a true stall and is counted (the first batch can never
/// be hidden).
class StagingTimeline {
 public:
  explicit StagingTimeline(bool double_buffer = true)
      : double_buffer_(double_buffer) {}

  struct Generation {
    double transfer_start_ns = 0.0;
    double transfer_end_ns = 0.0;
    double compute_start_ns = 0.0;
    double compute_end_ns = 0.0;
    double stall_ns = 0.0;  ///< compute_start - previous compute_end.
  };

  Generation advance(double transfer_ns, double compute_ns);

  /// Modeled end-to-end time so far (last generation's compute end).
  double makespan_ns() const { return compute_end_g1_; }
  /// The non-overlapped counterfactual: sum of every generation's T + C.
  double serial_sum_ns() const { return serial_sum_ns_; }
  std::uint64_t generations() const { return generations_; }
  bool double_buffered() const { return double_buffer_; }

  void reset() {
    transfer_end_ = compute_end_g1_ = compute_end_g2_ = serial_sum_ns_ = 0.0;
    generations_ = 0;
  }

 private:
  bool double_buffer_;
  double transfer_end_ = 0.0;     ///< When the link last went idle.
  double compute_end_g1_ = 0.0;   ///< Compute end of generation g-1.
  double compute_end_g2_ = 0.0;   ///< Compute end of generation g-2.
  double serial_sum_ns_ = 0.0;
  std::uint64_t generations_ = 0;
};

}  // namespace pim::hw
