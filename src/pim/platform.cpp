#include "src/pim/platform.h"

#include <stdexcept>

#include "src/align/search_core.h"
#include "src/align/seed_extend.h"

namespace pim::hw {

PimAlignerPlatform::PimAlignerPlatform(const index::FmIndex& fm,
                                       const TimingEnergyModel& timing,
                                       ZoneLayout layout,
                                       AddPlacement placement)
    : fm_(&fm), timing_(&timing), layout_(layout), placement_(placement) {
  layout_.validate(timing);
  const std::uint64_t capacity = layout_.bps_per_tile(timing.cols());
  const std::uint64_t total = fm.num_rows();
  const std::uint64_t num_tiles = (total + capacity - 1) / capacity;
  tiles_.reserve(num_tiles);
  for (std::uint64_t t = 0; t < num_tiles; ++t) {
    tiles_.push_back(
        std::make_unique<PimTile>(timing, layout_, fm, t * capacity));
    if (placement_ == AddPlacement::kMethodII) {
      // Method-II: the whole sub-array is duplicated so steps 2-4 run on
      // the copy while the original's compare resources stay free (Fig. 7).
      duplicates_.push_back(
          std::make_unique<PimTile>(timing, layout_, fm, t * capacity));
    }
  }
  // DPU boundary registers: LFM at id == num_rows when it falls exactly on
  // a tile boundary has no owning tile; the value is the final marker
  // (Count(nt) + Occ(nt, N)), a constant the DPU keeps locally.
  for (const auto nt : genome::kAllBases) {
    final_markers_[static_cast<std::size_t>(nt)] =
        fm.counts().count(nt) + fm.counts().occurrences(nt);
  }
}

std::uint64_t PimAlignerPlatform::lfm(genome::Base nt, std::uint64_t id) {
  if (id > fm_->num_rows()) {
    throw std::out_of_range("PimAlignerPlatform::lfm: id out of range");
  }
  ++lfm_calls_;
  const std::uint64_t capacity = layout_.bps_per_tile(timing_->cols());
  const std::uint64_t tile_idx = id / capacity;
  if (tile_idx >= tiles_.size()) {
    // id == num_rows on a tile boundary: answered from the DPU register.
    ++boundary_marker_hits_;
    return final_markers_[static_cast<std::size_t>(nt)];
  }
  PimTile& tile = *tiles_[tile_idx];
  if (placement_ == AddPlacement::kMethodI) {
    return tile.lfm(nt, id);
  }
  // Method-II: compare on the original, add on the duplicate.
  const std::uint32_t d = layout_.bps_per_row(timing_->cols());
  if ((id - tile.base()) % d == 0) {
    return tile.read_marker(nt, id);
  }
  const std::uint64_t count = tile.count_match(nt, id);
  return duplicates_[tile_idx]->marker_add(nt, id, count);
}

index::SaInterval PimAlignerPlatform::extend_hw(
    const index::SaInterval& interval, genome::Base nt) {
  return {lfm(nt, interval.low), lfm(nt, interval.high)};
}

align::ExactResult PimAlignerPlatform::exact_align(
    const std::vector<genome::Base>& read) {
  const PimSearchBackend backend(this);
  return align::exact_search_core(backend, read);
}

align::InexactResult PimAlignerPlatform::inexact_align(
    const std::vector<genome::Base>& read,
    const align::InexactOptions& options) {
  const PimSearchBackend backend(this);
  return align::inexact_search_core(backend, read, options);
}

std::vector<std::uint64_t> PimAlignerPlatform::locate_all(
    const index::SaInterval& interval) {
  // The SA lives in plain (non-computational) memory sub-arrays; each locate
  // is one 32-bit word read per row in the interval.
  sa_mem_reads_ += interval.count();
  return fm_->locate_all(interval);
}

namespace {

/// The PIM instantiation of the seed-extend Searcher concept.
struct HwSearcher {
  PimAlignerPlatform* platform;

  align::ExactResult search(const std::vector<genome::Base>& seed) const {
    return platform->exact_align(seed);
  }
  std::vector<std::uint64_t> locate(const index::SaInterval& interval) const {
    return platform->locate_all(interval);
  }
};

}  // namespace

align::SeedExtendResult seed_extend_hw(
    PimAlignerPlatform& platform, const genome::PackedSequence& reference,
    const std::vector<genome::Base>& read,
    const align::SeedExtendOptions& options) {
  if (platform.fm().reference_size() != reference.size()) {
    throw std::invalid_argument("seed_extend_hw: platform/reference mismatch");
  }
  return align::seed_extend_core(HwSearcher{&platform}, reference, read,
                                 options);
}

PimAlignerPlatform::AggregateStats PimAlignerPlatform::aggregate_stats() const {
  AggregateStats agg;
  for (const auto& tile : tiles_) {
    agg.ops += tile->stats();
  }
  for (const auto& tile : duplicates_) {
    agg.ops += tile->stats();
  }
  agg.lfm_calls = lfm_calls_;
  agg.boundary_marker_hits = boundary_marker_hits_;
  agg.sa_mem_reads = sa_mem_reads_;
  return agg;
}

SubArrayStats PimAlignerPlatform::aggregate_load_stats() const {
  SubArrayStats agg;
  for (const auto& tile : tiles_) {
    agg += tile->load_stats();
  }
  for (const auto& tile : duplicates_) {
    agg += tile->load_stats();
  }
  return agg;
}

SubArrayStats PimAlignerPlatform::aggregate_duplicate_stats() const {
  SubArrayStats agg;
  for (const auto& tile : duplicates_) {
    agg += tile->stats();
  }
  return agg;
}

void PimAlignerPlatform::reset_stats() {
  for (auto& tile : tiles_) tile->reset_stats();
  for (auto& tile : duplicates_) tile->reset_stats();
  lfm_calls_ = 0;
  boundary_marker_hits_ = 0;
  sa_mem_reads_ = 0;
  publish_stats_snapshot();  // a reset between measured batches shows through
}

}  // namespace pim::hw
