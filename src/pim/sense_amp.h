// Reconfigurable sense amplifier (Fig. 4b).
//
// Three sub-SAs and four reference branches (R_AND3, R_MAJ, R_OR3, R_M),
// selected by the enable bits (C_AND3, C_MAJ, C_OR3, C_M). Activating a
// single reference realises memory read or a one-threshold Boolean function;
// activating the three logic references simultaneously and combining the
// sub-SA outputs through the six control transistors realises single-cycle
// XOR3 (sum) alongside MAJ (carry) — the full adder of IM_ADD and, with one
// operand row preset to 1, the XNOR2 of XNOR_Match.
//
// Truth identity implemented by the control transistors:
//   XOR3(a,b,c) = (OR3 & ~MAJ) | AND3   (parity: exactly-one or all-three)
//
// The electrical path (resistances under process variation vs reference
// thresholds) and the ideal Boolean path are both exposed; reliability tests
// Monte-Carlo the electrical path against the Boolean truth table.
#pragma once

#include <cstdint>
#include <vector>

#include "src/pim/sot_mram.h"

namespace pim::hw {

/// Enable bits of Fig. 4b's control table.
struct SenseAmpEnables {
  bool c_and3 = false;
  bool c_maj = false;
  bool c_or3 = false;
  bool c_m = false;
};

/// Reference resistances, derived from the device model's nominal levels as
/// geometric midpoints between adjacent sensed combinations.
struct SenseReferences {
  double r_m_ohm = 0.0;     ///< Memory read: between R_P and R_AP paths.
  double r_and3_ohm = 0.0;  ///< Between Req(2 AP) and Req(3 AP) of 3 cells.
  double r_maj_ohm = 0.0;   ///< Between Req(1 AP) and Req(2 AP).
  double r_or3_ohm = 0.0;   ///< Between Req(0 AP) and Req(1 AP).
};

struct SenseAmpOutputs {
  bool and3 = false;
  bool maj3 = false;  ///< Also the carry of the full adder.
  bool or3 = false;
  bool xor3 = false;  ///< Also the sum of the full adder.
};

class ReconfigurableSenseAmp {
 public:
  explicit ReconfigurableSenseAmp(const SotMramModel& model);

  const SenseReferences& references() const { return refs_; }

  // --- Ideal (Boolean) path: used by the functional sub-array model. -------
  static bool ideal_and3(bool a, bool b, bool c) { return a && b && c; }
  static bool ideal_maj3(bool a, bool b, bool c) {
    return (a && b) || (b && c) || (a && c);
  }
  static bool ideal_or3(bool a, bool b, bool c) { return a || b || c; }
  static bool ideal_xor3(bool a, bool b, bool c) { return a ^ b ^ c; }
  static SenseAmpOutputs ideal_outputs(bool a, bool b, bool c);

  // --- Electrical path: thresholds against sampled resistances. ------------

  /// Memory read of one cell (fan-in 1): data '1' iff path R > R_M.
  bool sense_memory(const CellResistances& cell, bool stored_ap) const;

  /// Sense three cells in parallel, thresholds applied per enabled branch;
  /// xor3 combined from the three sub-SA outputs as the circuit does.
  /// `rng` (optional) adds the input-referred SA offset (absolute mV,
  /// params().sa_offset_sigma_mv) to each sub-SA comparison — the noise
  /// source that makes small margins fail.
  SenseAmpOutputs sense_triple(const std::vector<CellResistances>& cells,
                               std::uint32_t ap_mask,
                               util::Xoshiro256* rng = nullptr) const;

  /// Does the electrical triple-sense reproduce the Boolean truth table for
  /// this sample? Used by the Monte-Carlo reliability study.
  bool triple_sense_correct(const std::vector<CellResistances>& cells,
                            std::uint32_t ap_mask,
                            util::Xoshiro256* rng = nullptr) const;

 private:
  const SotMramModel& model_;
  SenseReferences refs_;
};

/// Monte-Carlo logic-failure study: fraction of trials where the electrical
/// AND3/MAJ/OR3/XOR3 outputs deviate from the Boolean truth table. The paper
/// limits fan-in to 3 and thickens tox to keep this at zero.
struct ReliabilityReport {
  std::size_t trials = 0;
  std::size_t failures = 0;
  double failure_rate() const {
    return trials ? static_cast<double>(failures) / static_cast<double>(trials)
                  : 0.0;
  }
};

ReliabilityReport monte_carlo_logic_reliability(const SotMramModel& model,
                                                std::size_t trials,
                                                std::uint64_t seed);

}  // namespace pim::hw
