#include "src/pim/trace.h"

#include <sstream>

namespace pim::hw {

namespace {
const char* op_name(SubArrayOp op) {
  switch (op) {
    case SubArrayOp::kMemRead: return "READ";
    case SubArrayOp::kMemWrite: return "WRITE";
    case SubArrayOp::kTripleSense: return "TRIPLE";
    case SubArrayOp::kDpuWord: return "DPU";
  }
  return "?";
}
}  // namespace

std::string TraceEntry::to_string() const {
  std::ostringstream out;
  out << op_name(op);
  for (std::uint32_t i = 0; i < row_count; ++i) {
    out << (i == 0 ? " r" : ",r") << rows[i];
  }
  return out.str();
}

void CommandTrace::record(SubArrayOp op,
                          std::initializer_list<std::uint32_t> rows) {
  if (entries_.size() >= capacity_) {
    overflowed_ = true;
    return;
  }
  TraceEntry entry;
  entry.op = op;
  for (const auto row : rows) {
    if (entry.row_count < 3) entry.rows[entry.row_count++] = row;
  }
  entries_.push_back(entry);
}

void CommandTrace::clear() {
  entries_.clear();
  overflowed_ = false;
}

std::size_t CommandTrace::count(SubArrayOp op) const {
  std::size_t total = 0;
  for (const auto& e : entries_) {
    if (e.op == op) ++total;
  }
  return total;
}

std::string CommandTrace::to_string() const {
  std::ostringstream out;
  for (const auto& e : entries_) out << e.to_string() << '\n';
  return out.str();
}

}  // namespace pim::hw
