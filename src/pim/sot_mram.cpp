#include "src/pim/sot_mram.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pim::hw {

SotMramModel::SotMramModel(const SotMramParams& params) : params_(params) {
  if (params_.mtj_area_um2 <= 0.0 || params_.ra_product_ohm_um2 <= 0.0) {
    throw std::invalid_argument("SotMramModel: RA and area must be positive");
  }
  const double thickness_scale =
      std::exp((params_.tox_nm - params_.tox0_nm) / params_.tox_lambda_nm);
  nominal_.r_p_ohm =
      params_.ra_product_ohm_um2 / params_.mtj_area_um2 * thickness_scale;
  nominal_.r_ap_ohm = nominal_.r_p_ohm * (1.0 + params_.tmr);
}

CellResistances SotMramModel::sample_cell(util::Xoshiro256& rng) const {
  // RA variation perturbs both states together; TMR variation perturbs the
  // AP state relative to P (the two independent variation sources of the
  // paper's Monte-Carlo setup).
  const double ra_factor =
      std::max(0.5, rng.gaussian(1.0, params_.sigma_ra_fraction));
  const double tmr_sample =
      std::max(0.0, rng.gaussian(params_.tmr, params_.tmr *
                                                  params_.sigma_tmr_fraction));
  CellResistances cell;
  cell.r_p_ohm = nominal_.r_p_ohm * ra_factor;
  cell.r_ap_ohm = cell.r_p_ohm * (1.0 + tmr_sample);
  return cell;
}

double SotMramModel::equivalent_resistance(
    const std::vector<CellResistances>& cells, std::uint32_t ap_mask) const {
  if (cells.empty()) {
    throw std::invalid_argument("equivalent_resistance: no cells");
  }
  double conductance = 0.0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const bool ap = (ap_mask >> i) & 1U;
    const double r =
        (ap ? cells[i].r_ap_ohm : cells[i].r_p_ohm) +
        params_.access_resistance_ohm;
    conductance += 1.0 / r;
  }
  return 1.0 / conductance;
}

double SotMramModel::v_sense(const std::vector<CellResistances>& cells,
                             std::uint32_t ap_mask) const {
  return params_.sense_current_ua * 1e-6 *
         equivalent_resistance(cells, ap_mask);
}

double SotMramModel::nominal_v_sense(std::uint32_t fan_in,
                                     std::uint32_t num_ap) const {
  if (fan_in == 0 || num_ap > fan_in) {
    throw std::invalid_argument("nominal_v_sense: bad fan-in/num_ap");
  }
  std::vector<CellResistances> cells(fan_in, nominal_);
  const std::uint32_t mask = (num_ap == 0) ? 0U : ((1U << num_ap) - 1U);
  return v_sense(cells, mask);
}

SenseMarginReport monte_carlo_sense_margin(const SotMramModel& model,
                                           std::uint32_t fan_in,
                                           std::size_t trials,
                                           std::uint64_t seed) {
  if (fan_in == 0 || fan_in > 31) {
    throw std::invalid_argument("monte_carlo_sense_margin: bad fan-in");
  }
  SenseMarginReport report;
  report.fan_in = fan_in;
  util::Xoshiro256 rng(seed);

  // One distribution per AP count; each trial samples fresh cells so the
  // study covers cell-to-cell mismatch, not just global drift.
  report.distributions.resize(fan_in + 1);
  for (std::uint32_t num_ap = 0; num_ap <= fan_in; ++num_ap) {
    report.distributions[num_ap].fan_in = fan_in;
    report.distributions[num_ap].num_ap = num_ap;
  }
  std::vector<CellResistances> cells(fan_in);
  for (std::size_t t = 0; t < trials; ++t) {
    for (auto& c : cells) c = model.sample_cell(rng);
    for (std::uint32_t num_ap = 0; num_ap <= fan_in; ++num_ap) {
      const std::uint32_t mask = (num_ap == 0) ? 0U : ((1U << num_ap) - 1U);
      report.distributions[num_ap].stats.add(model.v_sense(cells, mask) * 1e3);
    }
  }

  // Worst-case margin between adjacent combinations at 3 sigma.
  double worst = 1e18;
  for (std::uint32_t num_ap = 0; num_ap < fan_in; ++num_ap) {
    const auto& lo = report.distributions[num_ap].stats;
    const auto& hi = report.distributions[num_ap + 1].stats;
    const double margin =
        (hi.mean() - 3.0 * hi.stddev()) - (lo.mean() + 3.0 * lo.stddev());
    worst = std::min(worst, margin);
  }
  report.worst_margin_mv = worst;
  return report;
}

}  // namespace pim::hw
