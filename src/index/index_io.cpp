#include "src/index/index_io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <type_traits>
#include <vector>

namespace pim::index {

namespace {

// FNV-1a over a byte range; cheap integrity check against truncation and
// bit rot (not cryptographic).
std::uint64_t fnv1a(std::uint64_t hash, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;

void write_bytes(std::ostream& out, const void* data, std::size_t bytes,
                 std::uint64_t& hash) {
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(bytes));
  if (!out) throw std::runtime_error("index_io: write failed");
  hash = fnv1a(hash, data, bytes);
}

void read_bytes(std::istream& in, void* data, std::size_t bytes,
                std::uint64_t& hash) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (static_cast<std::size_t>(in.gcount()) != bytes) {
    throw std::runtime_error("index_io: truncated file");
  }
  hash = fnv1a(hash, data, bytes);
}

template <typename T>
void write_pod(std::ostream& out, const T& value, std::uint64_t& hash) {
  static_assert(std::is_trivially_copyable_v<T>);
  write_bytes(out, &value, sizeof(T), hash);
}

template <typename T>
T read_pod(std::istream& in, std::uint64_t& hash) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value{};
  read_bytes(in, &value, sizeof(T), hash);
  return value;
}

}  // namespace

void save_index(std::ostream& out, const FmIndex& index,
                const genome::PackedSequence& reference) {
  if (index.reference_size() != reference.size()) {
    throw std::invalid_argument(
        "save_index: index/reference size mismatch");
  }
  std::uint64_t hash = kFnvOffset;
  write_pod(out, kIndexMagic, hash);
  write_pod(out, kIndexVersion, hash);
  write_pod(out, index.config().bucket_width, hash);
  write_pod(out, index.config().sa_sample_rate, hash);

  // Reference: 2-bit packed.
  const std::uint64_t n = reference.size();
  write_pod(out, n, hash);
  for (std::uint64_t i = 0; i < n; i += 32) {
    std::uint64_t word = 0;
    for (std::uint64_t j = 0; j < 32 && i + j < n; ++j) {
      word |= static_cast<std::uint64_t>(reference.at(i + j)) << (2 * j);
    }
    write_pod(out, word, hash);
  }

  // Suffix array: dumping it trades ~4 bytes/base of disk for skipping
  // SA-IS at load. Recovered via locate() of every row (rate-independent).
  const std::uint64_t rows = index.num_rows();
  write_pod(out, rows, hash);
  for (std::uint64_t row = 0; row < rows; ++row) {
    write_pod(out, static_cast<std::uint32_t>(index.locate(row)), hash);
  }
  write_pod(out, hash, hash);  // trailing checksum (hash of all prior bytes)
  if (!out) throw std::runtime_error("index_io: write failed");
}

void save_index_file(const std::string& path, const FmIndex& index,
                     const genome::PackedSequence& reference) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("index_io: cannot open " + path);
  save_index(out, index, reference);
}

LoadedIndex load_index(std::istream& in) {
  std::uint64_t hash = kFnvOffset;
  if (read_pod<std::uint32_t>(in, hash) != kIndexMagic) {
    throw std::runtime_error("index_io: bad magic (not a PIM-Aligner index)");
  }
  if (read_pod<std::uint32_t>(in, hash) != kIndexVersion) {
    throw std::runtime_error("index_io: unsupported index version");
  }
  FmIndexConfig config;
  config.bucket_width = read_pod<std::uint32_t>(in, hash);
  config.sa_sample_rate = read_pod<std::uint32_t>(in, hash);

  const auto n = read_pod<std::uint64_t>(in, hash);
  genome::PackedSequence reference;
  for (std::uint64_t i = 0; i < n; i += 32) {
    const auto word = read_pod<std::uint64_t>(in, hash);
    for (std::uint64_t j = 0; j < 32 && i + j < n; ++j) {
      reference.push_back(
          static_cast<genome::Base>((word >> (2 * j)) & 0b11));
    }
  }

  const auto rows = read_pod<std::uint64_t>(in, hash);
  if (rows != n + 1) {
    throw std::runtime_error("index_io: SA size inconsistent with reference");
  }
  SuffixArray sa(rows);
  for (std::uint64_t row = 0; row < rows; ++row) {
    sa[row] = read_pod<std::uint32_t>(in, hash);
  }

  const std::uint64_t expected = hash;
  std::uint64_t ignored = kFnvOffset;
  const auto stored = read_pod<std::uint64_t>(in, ignored);
  if (stored != expected) {
    throw std::runtime_error("index_io: checksum mismatch (corrupt index)");
  }

  LoadedIndex loaded;
  loaded.reference = std::move(reference);
  loaded.index = FmIndex::build_from_sa(loaded.reference, sa, config);
  return loaded;
}

LoadedIndex load_index_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("index_io: cannot open " + path);
  return load_index(in);
}

}  // namespace pim::index
