#include "src/index/index_io.h"

#include <array>
#include <chrono>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace pim::index {

namespace detail {

std::uint64_t fnv1a(std::uint64_t hash, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

const char* section_name(SectionId id) {
  switch (id) {
    case SectionId::kReference:
      return "reference";
    case SectionId::kBwt:
      return "bwt";
    case SectionId::kMarkers:
      return "markers";
    case SectionId::kSaSamples:
      return "sa-samples";
    case SectionId::kSaRows:
      return "sa-rows";
    case SectionId::kSaRanks:
      return "sa-ranks";
    case SectionId::kChromosomes:
      return "chromosomes";
  }
  return "unknown";
}

}  // namespace detail

namespace {

using detail::FileHeaderV2;
using detail::fnv1a;
using detail::kFnvOffset;
using detail::SectionEntry;
using detail::SectionId;
using detail::section_name;

// The header and entries are written/read/mapped verbatim, so their layout
// is part of the on-disk format: no implicit padding allowed.
static_assert(sizeof(FileHeaderV2) == 120);
static_assert(sizeof(SectionEntry) == 32);
static_assert(std::is_trivially_copyable_v<FileHeaderV2>);
static_assert(std::is_trivially_copyable_v<SectionEntry>);

constexpr std::uint32_t kMaxSections = 64;
constexpr std::uint64_t kMaxChromosomes = 1ULL << 20;
constexpr std::uint64_t kMaxChromosomeName = 1ULL << 16;

constexpr std::uint64_t pad8(std::uint64_t bytes) { return (bytes + 7) & ~7ULL; }

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error("index_io: " + message);
}

[[noreturn]] void fail_section(SectionId id, const std::string& message) {
  fail("section '" + std::string(section_name(id)) + "': " + message);
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void write_raw(std::ostream& out, const void* data, std::size_t bytes) {
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(bytes));
  if (!out) fail("write failed");
}

// ---------------------------------------------------------------------------
// Legacy v1 helpers (sequential, whole-stream FNV trailer).

void write_bytes_v1(std::ostream& out, const void* data, std::size_t bytes,
                    std::uint64_t& hash) {
  write_raw(out, data, bytes);
  hash = fnv1a(hash, data, bytes);
}

void read_bytes_v1(std::istream& in, void* data, std::size_t bytes,
                   std::uint64_t& hash) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (static_cast<std::size_t>(in.gcount()) != bytes) fail("truncated file");
  hash = fnv1a(hash, data, bytes);
}

template <typename T>
void write_pod_v1(std::ostream& out, const T& value, std::uint64_t& hash) {
  static_assert(std::is_trivially_copyable_v<T>);
  write_bytes_v1(out, &value, sizeof(T), hash);
}

template <typename T>
T read_pod_v1(std::istream& in, std::uint64_t& hash) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value{};
  read_bytes_v1(in, &value, sizeof(T), hash);
  return value;
}

// Loads the v1 body (everything after magic + version, which the dispatcher
// already consumed and folded into `hash`). v1 stores only reference + SA;
// the marker/count tables are REBUILT here — that rebuild dominates v1 load
// time and is why v2 exists. The split is published as
// index.load.read_ms / index.load.rebuild_ms.
LoadedIndex load_index_v1(std::istream& in, std::uint64_t hash,
                          obs::MetricsRegistry* metrics) {
  const auto read_start = std::chrono::steady_clock::now();
  FmIndexConfig config;
  config.bucket_width = read_pod_v1<std::uint32_t>(in, hash);
  config.sa_sample_rate = read_pod_v1<std::uint32_t>(in, hash);

  const auto n = read_pod_v1<std::uint64_t>(in, hash);
  if (n == 0) fail_section(SectionId::kReference, "zero-length reference");
  genome::PackedSequence reference;
  for (std::uint64_t i = 0; i < n; i += 32) {
    const auto word = read_pod_v1<std::uint64_t>(in, hash);
    for (std::uint64_t j = 0; j < 32 && i + j < n; ++j) {
      reference.push_back(static_cast<genome::Base>((word >> (2 * j)) & 0b11));
    }
  }

  const auto rows = read_pod_v1<std::uint64_t>(in, hash);
  if (rows != n + 1) fail("SA size inconsistent with reference");
  SuffixArray sa(rows);
  for (std::uint64_t row = 0; row < rows; ++row) {
    sa[row] = read_pod_v1<std::uint32_t>(in, hash);
  }

  const std::uint64_t expected = hash;
  std::uint64_t ignored = kFnvOffset;
  const auto stored = read_pod_v1<std::uint64_t>(in, ignored);
  if (stored != expected) fail("checksum mismatch (corrupt index)");
  const double read_ms = ms_since(read_start);

  const auto rebuild_start = std::chrono::steady_clock::now();
  LoadedIndex loaded;
  loaded.reference = std::move(reference);
  loaded.index = FmIndex::build_from_sa(loaded.reference, sa, config);
  if (metrics != nullptr) {
    metrics->histogram("index.load.read_ms").observe(read_ms);
    metrics->histogram("index.load.rebuild_ms").observe(ms_since(rebuild_start));
  }
  return loaded;
}

// ---------------------------------------------------------------------------
// v2 chromosome section codec.
//
// Payload: u64 count, then per chromosome { u64 offset, u64 length,
// u64 name_len, name bytes zero-padded to 8 }.

std::vector<unsigned char> encode_chromosomes(
    const std::vector<genome::Chromosome>& chromosomes) {
  std::vector<unsigned char> out;
  const auto append_u64 = [&out](std::uint64_t v) {
    unsigned char bytes[8];
    std::memcpy(bytes, &v, 8);
    out.insert(out.end(), bytes, bytes + 8);
  };
  append_u64(chromosomes.size());
  for (const auto& chrom : chromosomes) {
    if (chrom.name.size() > kMaxChromosomeName) {
      throw std::invalid_argument("save_index: chromosome name too long");
    }
    append_u64(chrom.offset);
    append_u64(chrom.length);
    append_u64(chrom.name.size());
    out.insert(out.end(), chrom.name.begin(), chrom.name.end());
    out.resize(pad8(out.size()), 0);
  }
  return out;
}

// ---------------------------------------------------------------------------
// v2 writer.

struct SectionPayload {
  SectionId id;
  const void* data;
  std::uint64_t bytes;
};

void check_save_args(const FmIndex& index,
                     const genome::PackedSequence& reference,
                     const std::vector<genome::Chromosome>& chromosomes) {
  if (index.reference_size() != reference.size()) {
    throw std::invalid_argument("save_index: index/reference size mismatch");
  }
  if (reference.empty()) {
    throw std::invalid_argument("save_index: empty reference");
  }
  if (!chromosomes.empty()) {
    std::uint64_t expected_offset = 0;
    for (const auto& chrom : chromosomes) {
      if (chrom.offset != expected_offset) {
        throw std::invalid_argument(
            "save_index: chromosome offsets not contiguous");
      }
      expected_offset += chrom.length;
    }
    if (expected_offset != reference.size()) {
      throw std::invalid_argument(
          "save_index: chromosome lengths do not tile the reference");
    }
  }
}

// ---------------------------------------------------------------------------
// v2 expected geometry, shared by writer sanity and loader validation.

constexpr std::uint64_t words_for_bases(std::uint64_t bases) {
  return (bases + 31) / 32;
}
constexpr std::uint64_t words_for_bits(std::uint64_t bits) {
  return (bits + 63) / 64;
}

}  // namespace

namespace detail {

std::vector<SectionEntry> validate_v2_layout(const FileHeaderV2& header,
                                             const SectionEntry* table,
                                             std::uint64_t actual_file_bytes) {
  if (header.magic != kIndexMagic) {
    fail("bad magic (not a PIM-Aligner index)");
  }
  if (header.version != kIndexVersion) fail("unsupported index version");
  if (header.header_bytes != sizeof(FileHeaderV2)) {
    fail("header size mismatch");
  }
  {
    FileHeaderV2 copy = header;
    copy.header_checksum = 0;
    const auto sum =
        fnv1a(kFnvOffset, &copy, sizeof(copy) - sizeof(std::uint64_t));
    if (sum != header.header_checksum) fail("header checksum mismatch");
  }
  if (header.reference_bases == 0) {
    fail_section(SectionId::kReference, "zero-length reference");
  }
  if (header.num_sections == 0 || header.num_sections > kMaxSections) {
    fail("implausible section count");
  }
  if (header.file_bytes > actual_file_bytes) fail("truncated file");

  const std::uint64_t n = header.reference_bases;
  const std::uint64_t rows = n + 1;
  const std::uint64_t d = header.bucket_width;
  if (d == 0) fail("zero marker bucket width");
  if (header.sa_sample_rate == 0) fail("zero SA sample rate");
  if (header.primary >= rows) fail("primary row out of range");

  const std::uint64_t table_end =
      sizeof(FileHeaderV2) +
      std::uint64_t{header.num_sections} * sizeof(SectionEntry) +
      sizeof(std::uint64_t);

  std::vector<SectionEntry> entries(table, table + header.num_sections);
  std::array<bool, 8> seen{};
  std::uint64_t cursor = table_end;
  for (const auto& entry : entries) {
    if (entry.id == 0 || entry.id > static_cast<std::uint32_t>(
                                        SectionId::kChromosomes)) {
      fail("unknown section id " + std::to_string(entry.id));
    }
    const auto id = static_cast<SectionId>(entry.id);
    if (seen[entry.id]) fail_section(id, "duplicate section");
    seen[entry.id] = true;
    if (entry.offset % 8 != 0) fail_section(id, "misaligned offset");
    if (entry.offset < cursor) fail_section(id, "overlapping sections");
    if (entry.payload_bytes > header.file_bytes ||
        entry.offset > header.file_bytes - entry.payload_bytes) {
      fail_section(id, "truncated");
    }
    cursor = entry.offset + pad8(entry.payload_bytes);

    // Fixed-geometry sections must match the header exactly; a mismatch
    // means the file is internally inconsistent even if every checksum
    // passes.
    std::uint64_t expected = std::numeric_limits<std::uint64_t>::max();
    switch (id) {
      case SectionId::kReference:
        expected = words_for_bases(n) * 8;
        break;
      case SectionId::kBwt:
        expected = words_for_bases(rows) * 8;
        break;
      case SectionId::kMarkers:
        expected = (rows / d + 1) * sizeof(OccCheckpoint);
        break;
      case SectionId::kSaRows:
        expected = words_for_bits(rows) * 8;
        break;
      case SectionId::kSaRanks:
        expected = (rows / SampledSuffixArray::kRankBlockBits + 2) *
                   sizeof(std::uint32_t);
        break;
      case SectionId::kSaSamples:
        // Sample count depends on the data (value-based sampling); require
        // well-formed u32 payload with at least row 0's sample.
        if (entry.payload_bytes % sizeof(std::uint32_t) != 0 ||
            entry.payload_bytes == 0) {
          fail_section(id, "malformed payload size");
        }
        break;
      case SectionId::kChromosomes:
        if (entry.payload_bytes < sizeof(std::uint64_t)) {
          fail_section(id, "malformed payload size");
        }
        break;
    }
    if (expected != std::numeric_limits<std::uint64_t>::max() &&
        entry.payload_bytes != expected) {
      fail_section(id, "payload size inconsistent with header");
    }
  }
  for (std::uint32_t id = 1;
       id <= static_cast<std::uint32_t>(SectionId::kChromosomes); ++id) {
    if (!seen[id]) {
      fail_section(static_cast<SectionId>(id), "missing section");
    }
  }
  return entries;
}

std::vector<genome::Chromosome> parse_chromosomes(const unsigned char* data,
                                                  std::size_t bytes) {
  std::size_t pos = 0;
  const auto take_u64 = [&](std::uint64_t& out) {
    if (bytes - pos < 8) {
      fail_section(SectionId::kChromosomes, "malformed payload");
    }
    std::memcpy(&out, data + pos, 8);
    pos += 8;
  };
  std::uint64_t count = 0;
  take_u64(count);
  if (count > kMaxChromosomes) {
    fail_section(SectionId::kChromosomes, "implausible chromosome count");
  }
  std::vector<genome::Chromosome> chromosomes;
  chromosomes.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    genome::Chromosome chrom;
    std::uint64_t name_len = 0;
    take_u64(chrom.offset);
    take_u64(chrom.length);
    take_u64(name_len);
    if (name_len > kMaxChromosomeName || bytes - pos < pad8(name_len)) {
      fail_section(SectionId::kChromosomes, "malformed payload");
    }
    chrom.name.assign(reinterpret_cast<const char*>(data + pos),
                      static_cast<std::size_t>(name_len));
    pos += static_cast<std::size_t>(pad8(name_len));
    chromosomes.push_back(std::move(chrom));
  }
  return chromosomes;
}

LoadedIndex assemble_v2(const FileHeaderV2& header,
                        util::Storage<std::uint64_t> reference_words,
                        util::Storage<std::uint64_t> bwt_words,
                        util::Storage<OccCheckpoint> markers,
                        util::Storage<std::uint32_t> sa_samples,
                        util::Storage<std::uint64_t> sa_row_words,
                        util::Storage<std::uint32_t> sa_ranks,
                        std::vector<genome::Chromosome> chromosomes) {
  const std::uint64_t n = header.reference_bases;
  const std::uint64_t rows = n + 1;
  if (!chromosomes.empty()) {
    std::uint64_t total = 0;
    for (const auto& chrom : chromosomes) total += chrom.length;
    if (total != n) {
      fail_section(SectionId::kChromosomes,
                   "lengths inconsistent with reference");
    }
  }
  try {
    LoadedIndex loaded;
    loaded.reference = genome::PackedSequence::from_words(
        std::move(reference_words), static_cast<std::size_t>(n));
    Bwt bwt;
    bwt.symbols = genome::PackedSequence::from_words(
        std::move(bwt_words), static_cast<std::size_t>(rows));
    bwt.primary = header.primary;
    std::array<std::uint64_t, genome::kNumBases> counts{};
    std::array<std::uint64_t, genome::kNumBases> occurrences{};
    for (std::size_t b = 0; b < genome::kNumBases; ++b) {
      counts[b] = header.counts[b];
      occurrences[b] = header.occurrences[b];
    }
    auto sampled_sa = SampledSuffixArray::from_parts(
        header.sa_sample_rate,
        util::BitVector::from_words(std::move(sa_row_words),
                                    static_cast<std::size_t>(rows)),
        std::move(sa_ranks), std::move(sa_samples));
    FmIndexConfig config;
    config.bucket_width = header.bucket_width;
    config.sa_sample_rate = header.sa_sample_rate;
    loaded.index = FmIndex::from_parts(
        config, std::move(bwt), CountTable(counts, occurrences),
        MarkerTable::from_parts(header.bucket_width, std::move(markers)),
        std::move(sampled_sa));
    loaded.chromosomes = std::move(chromosomes);
    return loaded;
  } catch (const std::invalid_argument& e) {
    // A structurally inconsistent (but checksummed) artifact is an I/O-level
    // corruption from the caller's point of view.
    fail(std::string("inconsistent index structure: ") + e.what());
  }
}

}  // namespace detail

// ---------------------------------------------------------------------------
// v2 writer.

void save_index(std::ostream& out, const FmIndex& index,
                const genome::PackedSequence& reference,
                const std::vector<genome::Chromosome>& chromosomes) {
  check_save_args(index, reference, chromosomes);

  FileHeaderV2 header;
  header.magic = kIndexMagic;
  header.version = kIndexVersion;
  header.header_bytes = sizeof(FileHeaderV2);
  header.bucket_width = index.config().bucket_width;
  header.sa_sample_rate = index.config().sa_sample_rate;
  header.reference_bases = reference.size();
  header.primary = index.bwt().primary;
  for (std::size_t b = 0; b < genome::kNumBases; ++b) {
    const auto nt = static_cast<genome::Base>(b);
    header.counts[b] = index.counts().count(nt);
    header.occurrences[b] = index.counts().occurrences(nt);
  }

  const auto chrom_payload = encode_chromosomes(chromosomes);
  const auto ref_words = reference.words();
  const auto bwt_words = index.bwt().symbols.words();
  const auto marker_rows = index.markers().rows();
  const auto sa_samples = index.sampled_sa().samples();
  const auto sa_row_words = index.sampled_sa().sampled_rows().words();
  const auto sa_ranks = index.sampled_sa().rank_blocks();
  const std::array<SectionPayload, 7> payloads = {{
      {SectionId::kReference, ref_words.data(), ref_words.size_bytes()},
      {SectionId::kBwt, bwt_words.data(), bwt_words.size_bytes()},
      {SectionId::kMarkers, marker_rows.data(), marker_rows.size_bytes()},
      {SectionId::kSaSamples, sa_samples.data(), sa_samples.size_bytes()},
      {SectionId::kSaRows, sa_row_words.data(), sa_row_words.size_bytes()},
      {SectionId::kSaRanks, sa_ranks.data(), sa_ranks.size_bytes()},
      {SectionId::kChromosomes, chrom_payload.data(), chrom_payload.size()},
  }};
  header.num_sections = static_cast<std::uint32_t>(payloads.size());

  std::array<SectionEntry, 7> table{};
  std::uint64_t offset = sizeof(FileHeaderV2) +
                         payloads.size() * sizeof(SectionEntry) +
                         sizeof(std::uint64_t);  // + table checksum
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    table[i].id = static_cast<std::uint32_t>(payloads[i].id);
    table[i].offset = offset;
    table[i].payload_bytes = payloads[i].bytes;
    table[i].checksum = fnv1a(kFnvOffset, payloads[i].data, payloads[i].bytes);
    offset += pad8(payloads[i].bytes);
  }
  header.file_bytes = offset;
  header.header_checksum = fnv1a(kFnvOffset, &header,
                                 sizeof(header) - sizeof(std::uint64_t));

  write_raw(out, &header, sizeof(header));
  write_raw(out, table.data(), table.size() * sizeof(SectionEntry));
  const std::uint64_t table_checksum =
      fnv1a(kFnvOffset, table.data(), table.size() * sizeof(SectionEntry));
  write_raw(out, &table_checksum, sizeof(table_checksum));
  static constexpr char kZeros[8] = {};
  for (const auto& payload : payloads) {
    write_raw(out, payload.data, payload.bytes);
    const auto padding = pad8(payload.bytes) - payload.bytes;
    if (padding != 0) write_raw(out, kZeros, padding);
  }
  out.flush();
  if (!out) fail("write failed");
}

void save_index_file(const std::string& path, const FmIndex& index,
                     const genome::PackedSequence& reference,
                     const std::vector<genome::Chromosome>& chromosomes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail("cannot open " + path);
  save_index(out, index, reference, chromosomes);
}

void save_index_v1(std::ostream& out, const FmIndex& index,
                   const genome::PackedSequence& reference) {
  if (index.reference_size() != reference.size()) {
    throw std::invalid_argument("save_index: index/reference size mismatch");
  }
  std::uint64_t hash = kFnvOffset;
  write_pod_v1(out, kIndexMagic, hash);
  write_pod_v1(out, kIndexVersionV1, hash);
  write_pod_v1(out, index.config().bucket_width, hash);
  write_pod_v1(out, index.config().sa_sample_rate, hash);

  // Reference: 2-bit packed.
  const std::uint64_t n = reference.size();
  write_pod_v1(out, n, hash);
  for (std::uint64_t i = 0; i < n; i += 32) {
    std::uint64_t word = 0;
    for (std::uint64_t j = 0; j < 32 && i + j < n; ++j) {
      word |= static_cast<std::uint64_t>(reference.at(i + j)) << (2 * j);
    }
    write_pod_v1(out, word, hash);
  }

  // Suffix array: dumping it trades ~4 bytes/base of disk for skipping
  // SA-IS at load. Recovered via locate() of every row (rate-independent).
  const std::uint64_t rows = index.num_rows();
  write_pod_v1(out, rows, hash);
  for (std::uint64_t row = 0; row < rows; ++row) {
    write_pod_v1(out, static_cast<std::uint32_t>(index.locate(row)), hash);
  }
  write_pod_v1(out, hash, hash);  // trailing checksum (hash of all prior bytes)
  if (!out) fail("write failed");
}

// ---------------------------------------------------------------------------
// Loading.

namespace {

// Reads one v2 section payload into an owned, element-typed buffer and
// verifies its checksum. `origin` is the stream position of the file's
// first byte (load_index accepts streams that start mid-file).
template <typename T>
util::Storage<T> read_section(std::istream& in, std::istream::pos_type origin,
                              const SectionEntry& entry) {
  const auto id = static_cast<SectionId>(entry.id);
  std::vector<T> buffer(static_cast<std::size_t>(entry.payload_bytes) /
                        sizeof(T));
  in.clear();
  in.seekg(origin + static_cast<std::istream::off_type>(entry.offset));
  in.read(reinterpret_cast<char*>(buffer.data()),
          static_cast<std::streamsize>(entry.payload_bytes));
  if (!in ||
      static_cast<std::uint64_t>(in.gcount()) != entry.payload_bytes) {
    fail_section(id, "truncated");
  }
  if (fnv1a(kFnvOffset, buffer.data(), entry.payload_bytes) !=
      entry.checksum) {
    fail_section(id, "checksum mismatch");
  }
  return util::Storage<T>(std::move(buffer));
}

const SectionEntry& find_section(const std::vector<SectionEntry>& entries,
                                 SectionId id) {
  for (const auto& entry : entries) {
    if (entry.id == static_cast<std::uint32_t>(id)) return entry;
  }
  // validate_v2_layout guarantees presence; unreachable.
  fail_section(id, "missing section");
}

LoadedIndex load_index_v2(std::istream& in, std::istream::pos_type origin,
                          const FileHeaderV2& header,
                          obs::MetricsRegistry* metrics) {
  // Stream extent, for the bounds checks the mapped loader gets from fstat.
  in.clear();
  in.seekg(0, std::ios::end);
  const auto end_pos = in.tellg();
  if (end_pos < origin) fail("truncated file");
  const auto actual_bytes = static_cast<std::uint64_t>(end_pos - origin);

  if (header.num_sections == 0 || header.num_sections > kMaxSections) {
    fail("implausible section count");
  }
  std::vector<SectionEntry> table(header.num_sections);
  const std::uint64_t table_bytes =
      std::uint64_t{header.num_sections} * sizeof(SectionEntry);
  in.clear();
  in.seekg(origin + static_cast<std::istream::off_type>(sizeof(FileHeaderV2)));
  in.read(reinterpret_cast<char*>(table.data()),
          static_cast<std::streamsize>(table_bytes));
  std::uint64_t stored_table_checksum = 0;
  in.read(reinterpret_cast<char*>(&stored_table_checksum),
          sizeof(stored_table_checksum));
  if (!in) fail("truncated file");
  if (fnv1a(kFnvOffset, table.data(), table_bytes) != stored_table_checksum) {
    fail("section table checksum mismatch");
  }

  const auto entries =
      detail::validate_v2_layout(header, table.data(), actual_bytes);

  const auto read_start = std::chrono::steady_clock::now();
  auto reference_words = read_section<std::uint64_t>(
      in, origin, find_section(entries, SectionId::kReference));
  auto bwt_words = read_section<std::uint64_t>(
      in, origin, find_section(entries, SectionId::kBwt));
  auto markers = read_section<OccCheckpoint>(
      in, origin, find_section(entries, SectionId::kMarkers));
  auto sa_samples = read_section<std::uint32_t>(
      in, origin, find_section(entries, SectionId::kSaSamples));
  auto sa_row_words = read_section<std::uint64_t>(
      in, origin, find_section(entries, SectionId::kSaRows));
  auto sa_ranks = read_section<std::uint32_t>(
      in, origin, find_section(entries, SectionId::kSaRanks));
  auto chrom_storage = read_section<unsigned char>(
      in, origin, find_section(entries, SectionId::kChromosomes));
  auto chromosomes =
      detail::parse_chromosomes(chrom_storage.data(), chrom_storage.size());
  if (metrics != nullptr) {
    metrics->histogram("index.load.read_ms").observe(ms_since(read_start));
  }

  return detail::assemble_v2(header, std::move(reference_words),
                             std::move(bwt_words), std::move(markers),
                             std::move(sa_samples), std::move(sa_row_words),
                             std::move(sa_ranks), std::move(chromosomes));
}

}  // namespace

LoadedIndex load_index(std::istream& in, obs::MetricsRegistry* metrics) {
  const auto start = std::chrono::steady_clock::now();
  const std::istream::pos_type origin = in.tellg();

  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in) fail("truncated file");
  if (magic != kIndexMagic) fail("bad magic (not a PIM-Aligner index)");

  LoadedIndex loaded;
  if (version == kIndexVersionV1) {
    std::uint64_t hash = kFnvOffset;
    hash = fnv1a(hash, &magic, sizeof(magic));
    hash = fnv1a(hash, &version, sizeof(version));
    loaded = load_index_v1(in, hash, metrics);
  } else if (version == kIndexVersion) {
    FileHeaderV2 header;
    header.magic = magic;
    header.version = version;
    in.read(reinterpret_cast<char*>(&header) + 2 * sizeof(std::uint32_t),
            sizeof(header) - 2 * sizeof(std::uint32_t));
    if (!in) fail("truncated file");
    loaded = load_index_v2(in, origin, header, metrics);
  } else {
    fail("unsupported index version");
  }
  if (metrics != nullptr) {
    metrics->histogram("index.load.stream_ms").observe(ms_since(start));
  }
  return loaded;
}

LoadedIndex load_index_file(const std::string& path,
                            obs::MetricsRegistry* metrics) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open " + path);
  return load_index(in, metrics);
}

genome::MultiReference LoadedIndex::multi_reference() const {
  if (chromosomes.empty()) return {};
  // Copying `reference` is cheap in both storage modes: owned copies share
  // nothing but are small next to the index; borrowed copies are views into
  // the same mapping (which must outlive the result, as it outlives *this).
  return genome::MultiReference::from_concatenated(reference, chromosomes);
}

IndexFileInfo inspect_index_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open " + path);
  in.seekg(0, std::ios::end);
  const auto actual_bytes = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0);

  IndexFileInfo info;
  info.file_bytes = actual_bytes;

  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in) fail("truncated file");
  if (magic != kIndexMagic) fail("bad magic (not a PIM-Aligner index)");
  info.version = version;

  if (version == kIndexVersionV1) {
    std::uint64_t ignored = kFnvOffset;
    info.bucket_width = read_pod_v1<std::uint32_t>(in, ignored);
    info.sa_sample_rate = read_pod_v1<std::uint32_t>(in, ignored);
    info.reference_bases = read_pod_v1<std::uint64_t>(in, ignored);
    return info;
  }
  if (version != kIndexVersion) fail("unsupported index version");

  FileHeaderV2 header;
  header.magic = magic;
  header.version = version;
  in.read(reinterpret_cast<char*>(&header) + 2 * sizeof(std::uint32_t),
          sizeof(header) - 2 * sizeof(std::uint32_t));
  if (!in) fail("truncated file");
  info.bucket_width = header.bucket_width;
  info.sa_sample_rate = header.sa_sample_rate;
  info.reference_bases = header.reference_bases;
  info.file_bytes = header.file_bytes;

  if (header.num_sections == 0 || header.num_sections > kMaxSections) {
    fail("implausible section count");
  }
  std::vector<SectionEntry> table(header.num_sections);
  const std::uint64_t table_bytes =
      std::uint64_t{header.num_sections} * sizeof(SectionEntry);
  in.read(reinterpret_cast<char*>(table.data()),
          static_cast<std::streamsize>(table_bytes));
  std::uint64_t stored_table_checksum = 0;
  in.read(reinterpret_cast<char*>(&stored_table_checksum),
          sizeof(stored_table_checksum));
  if (!in) fail("truncated file");
  if (fnv1a(kFnvOffset, table.data(), table_bytes) != stored_table_checksum) {
    fail("section table checksum mismatch");
  }
  const auto entries =
      detail::validate_v2_layout(header, table.data(), actual_bytes);

  for (const auto& entry : entries) {
    IndexSectionInfo section;
    section.name = section_name(static_cast<SectionId>(entry.id));
    section.offset = entry.offset;
    section.payload_bytes = entry.payload_bytes;
    section.checksum = entry.checksum;
    info.sections.push_back(std::move(section));
  }
  const auto chrom_storage = read_section<unsigned char>(
      in, std::istream::pos_type(0),
      find_section(entries, SectionId::kChromosomes));
  info.num_chromosomes =
      detail::parse_chromosomes(chrom_storage.data(), chrom_storage.size())
          .size();
  return info;
}

}  // namespace pim::index
