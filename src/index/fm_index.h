// FM-index facade — ties together BWT, Count, Marker Table and sampled SA
// into the structure Algorithm 1/2 and the PIM mapping layer consume.
//
// The three persisted structures match the paper exactly: BWT, MT, SA
// ("only BWT, Marker Table (MT), and SA will be stored in the memory").
// The full Occ table is never kept; occ() is always computed as
// marker + count_match, the decomposition the hardware executes.
#pragma once

#include <cstdint>
#include <vector>

#include "src/genome/packed_sequence.h"
#include "src/index/bwt.h"
#include "src/index/marker_table.h"
#include "src/index/occ_table.h"
#include "src/index/sampled_sa.h"
#include "src/index/suffix_array.h"

namespace pim::index {

/// Half-open SA interval [low, high): the suffixes sharing the current query
/// suffix as a prefix. `low < high` means the pattern (so far) occurs.
struct SaInterval {
  std::uint64_t low = 0;
  std::uint64_t high = 0;

  bool valid() const { return low < high; }
  std::uint64_t count() const { return valid() ? high - low : 0; }
  bool operator==(const SaInterval&) const = default;
};

struct FmIndexConfig {
  /// Occ checkpoint spacing d. 128 bps = one sub-array row (paper default).
  std::uint32_t bucket_width = 128;
  /// SA sampling rate; 1 = full SA as in the paper.
  std::uint32_t sa_sample_rate = 1;
};

class FmIndex {
 public:
  FmIndex() = default;

  /// Build all structures from the reference. O(n) time via SA-IS.
  static FmIndex build(const genome::PackedSequence& reference,
                       const FmIndexConfig& config = {});

  /// Build from a pre-computed suffix array (e.g. deserialized): skips
  /// SA-IS, everything else is derived in O(n). The SA must be the
  /// sentinel-inclusive array of `reference` (size n+1).
  static FmIndex build_from_sa(const genome::PackedSequence& reference,
                               const SuffixArray& sa,
                               const FmIndexConfig& config = {});

  /// Reassemble from persisted structures without rebuilding anything —
  /// the zero-copy load path (S42): every part may borrow its buffers from
  /// a mapped index artifact. Performs structural consistency checks
  /// (marker row count, sampled-row count, primary in range) and throws
  /// std::invalid_argument on mismatch; it does NOT re-derive the parts, so
  /// a checksummed artifact is the integrity story.
  static FmIndex from_parts(const FmIndexConfig& config, Bwt bwt,
                            CountTable counts, MarkerTable markers,
                            SampledSuffixArray sampled_sa);

  /// Number of bases in the reference (n); BWT rows are n+1.
  std::uint64_t reference_size() const { return bwt_.size() - 1; }
  std::uint64_t num_rows() const { return bwt_.size(); }

  const Bwt& bwt() const { return bwt_; }
  const CountTable& counts() const { return counts_; }
  const MarkerTable& markers() const { return markers_; }
  const SampledSuffixArray& sampled_sa() const { return sampled_sa_; }
  const FmIndexConfig& config() const { return config_; }

  /// Occ(nt, i) — computed from the marker table (marker - Count + residual).
  std::uint64_t occ(genome::Base nt, std::size_t i) const {
    return markers_.lfm(bwt_, nt, i) - counts_.count(nt);
  }

  /// The LFM procedure: Count(nt) + Occ(nt, id).
  std::uint64_t lfm(genome::Base nt, std::size_t id) const {
    return markers_.lfm(bwt_, nt, id);
  }

  /// The whole-reference interval every backward search starts from.
  SaInterval whole_interval() const { return {0, num_rows()}; }

  /// One backward-extension step: prepend `nt` to the current pattern.
  SaInterval extend(const SaInterval& interval, genome::Base nt) const {
    return {lfm(nt, interval.low), lfm(nt, interval.high)};
  }

  /// Text position of SA row `row`.
  std::uint64_t locate(std::size_t row) const;

  /// All text positions in an interval, sorted ascending.
  std::vector<std::uint64_t> locate_all(const SaInterval& interval) const;

  /// Same, into `out` (clear + append, reusing capacity) — the engine hot
  /// path calls this once per located read with a per-worker scratch buffer.
  void locate_all_into(const SaInterval& interval,
                       std::vector<std::uint64_t>& out) const;

  /// Memory footprint of the persisted structures, for Fig. 10a-style
  /// accounting (scaled analytically to Hg19 in the chip model).
  struct MemoryFootprint {
    std::size_t bwt_bytes = 0;
    std::size_t marker_bytes = 0;
    std::size_t sa_bytes = 0;
    std::size_t total() const { return bwt_bytes + marker_bytes + sa_bytes; }
  };
  MemoryFootprint memory_footprint() const;

 private:
  FmIndexConfig config_;
  Bwt bwt_;
  CountTable counts_;
  MarkerTable markers_;
  SampledSuffixArray sampled_sa_;
};

}  // namespace pim::index
