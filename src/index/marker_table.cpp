#include "src/index/marker_table.h"

#include <stdexcept>

namespace pim::index {

MarkerTable::MarkerTable(const Bwt& bwt, const CountTable& counts,
                         std::uint32_t bucket_width)
    : d_(bucket_width) {
  if (bucket_width == 0) {
    throw std::invalid_argument("MarkerTable: bucket width must be > 0");
  }
  const SampledOccTable sampled(bwt, bucket_width);
  auto& markers = markers_.vec();
  markers.resize(sampled.num_checkpoints());
  for (std::size_t k = 0; k < markers.size(); ++k) {
    for (const auto nt : genome::kAllBases) {
      const std::uint64_t value =
          counts.count(nt) + sampled.checkpoint(nt, k);
      markers[k][static_cast<std::size_t>(nt)] =
          static_cast<std::uint32_t>(value);
    }
  }
}

MarkerTable MarkerTable::from_parts(std::uint32_t bucket_width,
                                    util::Storage<OccCheckpoint> markers) {
  if (bucket_width == 0) {
    throw std::invalid_argument("MarkerTable: bucket width must be > 0");
  }
  MarkerTable table;
  table.d_ = bucket_width;
  table.markers_ = std::move(markers);
  return table;
}

std::uint64_t MarkerTable::lfm(const Bwt& bwt, genome::Base nt,
                               std::size_t id) const {
  if (id > bwt.size()) throw std::out_of_range("MarkerTable::lfm");
  const std::size_t start = id - (id % d_);
  std::uint64_t count_match = 0;
  for (std::size_t pos = start; pos < id; ++pos) {
    if (bwt.is_sentinel(pos)) continue;
    if (bwt.symbols.at(pos) == nt) ++count_match;
  }
  return marker(nt, id / d_) + count_match;
}

}  // namespace pim::index
