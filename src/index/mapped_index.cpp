#include "src/index/mapped_index.h"

#include <chrono>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define PIM_INDEX_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace pim::index {

namespace {

using detail::FileHeaderV2;
using detail::fnv1a;
using detail::kFnvOffset;
using detail::SectionEntry;
using detail::SectionId;
using detail::section_name;

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error("index_io: " + message);
}

#if PIM_INDEX_HAVE_MMAP

// Scoped mapping so every validation-failure path unmaps exactly once; the
// successful path releases ownership into the MappedIndex.
struct ScopedMap {
  void* base = nullptr;
  std::size_t bytes = 0;

  ~ScopedMap() {
    if (base != nullptr) ::munmap(base, bytes);
  }
  void* release() { return std::exchange(base, nullptr); }
};

const SectionEntry& find_entry(const std::vector<SectionEntry>& entries,
                               SectionId id) {
  for (const auto& entry : entries) {
    if (entry.id == static_cast<std::uint32_t>(id)) return entry;
  }
  fail(std::string("section '") + section_name(id) + "': missing section");
}

void drop_pages(const unsigned char* base, const SectionEntry& entry) {
  // Round inward to whole pages; partial edge pages stay resident (shared
  // with the neighbouring section anyway).
  const auto page = static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
  const std::uint64_t begin = (entry.offset + page - 1) / page * page;
  const std::uint64_t end = (entry.offset + entry.payload_bytes) / page * page;
  if (end <= begin) return;
  // Advisory only — failure just means the pages stay resident.
  (void)::madvise(const_cast<unsigned char*>(base) + begin,
                  static_cast<std::size_t>(end - begin), MADV_DONTNEED);
}

#endif  // PIM_INDEX_HAVE_MMAP

}  // namespace

MappedIndex::~MappedIndex() { unmap(); }

MappedIndex::MappedIndex(MappedIndex&& other) noexcept
    : loaded_(std::move(other.loaded_)),
      map_base_(std::exchange(other.map_base_, nullptr)),
      map_bytes_(std::exchange(other.map_bytes_, 0)),
      file_bytes_(std::exchange(other.file_bytes_, 0)) {}

MappedIndex& MappedIndex::operator=(MappedIndex&& other) noexcept {
  if (this != &other) {
    unmap();
    // The borrowed structures point into the mapping, not into `other`, so
    // moving the LoadedIndex cannot dangle.
    loaded_ = std::move(other.loaded_);
    map_base_ = std::exchange(other.map_base_, nullptr);
    map_bytes_ = std::exchange(other.map_bytes_, 0);
    file_bytes_ = std::exchange(other.file_bytes_, 0);
  }
  return *this;
}

void MappedIndex::unmap() noexcept {
#if PIM_INDEX_HAVE_MMAP
  if (map_base_ != nullptr) {
    // Drop the borrowing structures before the region they borrow.
    loaded_ = LoadedIndex{};
    ::munmap(map_base_, map_bytes_);
    map_base_ = nullptr;
    map_bytes_ = 0;
  }
#endif
}

std::uint64_t MappedIndex::resident_bytes() const {
  if (mapped()) return map_bytes_;
  return loaded_.reference.memory_bytes() +
         loaded_.index.memory_footprint().total();
}

MappedIndex MappedIndex::open(const std::string& path,
                              const MappedIndexOptions& options,
                              obs::MetricsRegistry* metrics) {
  const auto start = std::chrono::steady_clock::now();
#if PIM_INDEX_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st{};
    const bool stat_ok = ::fstat(fd, &st) == 0 && st.st_size > 0;
    const auto file_size = stat_ok ? static_cast<std::size_t>(st.st_size) : 0;
    ScopedMap map;
    if (stat_ok) {
      void* base = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
      if (base != MAP_FAILED) {
        map.base = base;
        map.bytes = file_size;
      }
    }
    ::close(fd);  // The mapping keeps the file alive.

    if (map.base != nullptr) {
      if (map.bytes < 2 * sizeof(std::uint32_t)) fail("truncated file");
      const auto* bytes = static_cast<const unsigned char*>(map.base);
      std::uint32_t magic = 0;
      std::uint32_t version = 0;
      std::memcpy(&magic, bytes, sizeof(magic));
      std::memcpy(&version, bytes + sizeof(magic), sizeof(version));
      if (magic != kIndexMagic) fail("bad magic (not a PIM-Aligner index)");

      if (version == kIndexVersion) {
        if (map.bytes < sizeof(FileHeaderV2)) fail("truncated file");
        FileHeaderV2 header;
        std::memcpy(&header, bytes, sizeof(header));
        if (header.num_sections == 0 ||
            header.num_sections > 64) {  // kMaxSections, pre-table sanity
          fail("implausible section count");
        }
        const std::uint64_t table_bytes =
            std::uint64_t{header.num_sections} * sizeof(SectionEntry);
        const std::uint64_t table_end =
            sizeof(FileHeaderV2) + table_bytes + sizeof(std::uint64_t);
        if (table_end > map.bytes) fail("truncated file");
        std::vector<SectionEntry> table(header.num_sections);
        std::memcpy(table.data(), bytes + sizeof(FileHeaderV2),
                    static_cast<std::size_t>(table_bytes));
        std::uint64_t stored_table_checksum = 0;
        std::memcpy(&stored_table_checksum,
                    bytes + sizeof(FileHeaderV2) + table_bytes,
                    sizeof(stored_table_checksum));
        if (fnv1a(kFnvOffset, table.data(),
                  static_cast<std::size_t>(table_bytes)) !=
            stored_table_checksum) {
          fail("section table checksum mismatch");
        }
        const auto entries =
            detail::validate_v2_layout(header, table.data(), map.bytes);

        if (options.verify_checksums) {
          for (const auto& entry : entries) {
            const auto id = static_cast<SectionId>(entry.id);
            if (fnv1a(kFnvOffset, bytes + entry.offset,
                      static_cast<std::size_t>(entry.payload_bytes)) !=
                entry.checksum) {
              fail(std::string("section '") + section_name(id) +
                   "': checksum mismatch");
            }
            if (options.drop_pages_after_verify) drop_pages(bytes, entry);
          }
        }

        // Index lookups are random-access by nature (backward search hops
        // across the BWT, locate across the SA samples); default readahead
        // would fault in ~128 KB per touch and balloon RSS far past the
        // working set. Advised after verification so the sequential
        // checksum pass above still enjoyed readahead.
        (void)::madvise(map.base, map.bytes, MADV_RANDOM);
#ifdef MADV_NOHUGEPAGE
        // Likewise decline huge-folio mapping: one random locate should not
        // make 2 MB of SA samples resident.
        (void)::madvise(map.base, map.bytes, MADV_NOHUGEPAGE);
#endif

        const auto borrow_u64 = [bytes](const SectionEntry& entry) {
          return util::Storage<std::uint64_t>::borrowed(
              reinterpret_cast<const std::uint64_t*>(bytes + entry.offset),
              static_cast<std::size_t>(entry.payload_bytes / 8));
        };
        const auto borrow_u32 = [bytes](const SectionEntry& entry) {
          return util::Storage<std::uint32_t>::borrowed(
              reinterpret_cast<const std::uint32_t*>(bytes + entry.offset),
              static_cast<std::size_t>(entry.payload_bytes / 4));
        };
        const auto& markers_entry = find_entry(entries, SectionId::kMarkers);
        const auto& chrom_entry =
            find_entry(entries, SectionId::kChromosomes);

        MappedIndex result;
        result.loaded_ = detail::assemble_v2(
            header, borrow_u64(find_entry(entries, SectionId::kReference)),
            borrow_u64(find_entry(entries, SectionId::kBwt)),
            util::Storage<OccCheckpoint>::borrowed(
                reinterpret_cast<const OccCheckpoint*>(bytes +
                                                       markers_entry.offset),
                static_cast<std::size_t>(markers_entry.payload_bytes /
                                         sizeof(OccCheckpoint))),
            borrow_u32(find_entry(entries, SectionId::kSaSamples)),
            borrow_u64(find_entry(entries, SectionId::kSaRows)),
            borrow_u32(find_entry(entries, SectionId::kSaRanks)),
            detail::parse_chromosomes(
                bytes + chrom_entry.offset,
                static_cast<std::size_t>(chrom_entry.payload_bytes)));
        result.map_bytes_ = map.bytes;
        result.file_bytes_ = header.file_bytes;
        result.map_base_ = map.release();
        if (metrics != nullptr) {
          metrics->histogram("index.load.map_ms")
              .observe(std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - start)
                           .count());
        }
        return result;
      }
      // v1 (or future versions load_index knows): fall through to the
      // stream loader below. Unsupported versions fail there with the
      // canonical error.
    }
  }
#endif  // PIM_INDEX_HAVE_MMAP
  (void)options;
  // Graceful fallback: no mmap on this platform, the file could not be
  // mapped, or it is a v1 artifact (whose tables are rebuilt, not mapped).
  MappedIndex result;
  result.loaded_ = load_index_file(path, metrics);
  result.file_bytes_ = 0;
  {
    std::ifstream probe(path, std::ios::binary | std::ios::ate);
    if (probe) result.file_bytes_ = static_cast<std::uint64_t>(probe.tellg());
  }
  return result;
}

}  // namespace pim::index
