// Suffix array construction.
//
// The paper's pre-computation step (Fig. 2) builds the BW matrix by sorting
// all rotations of reference$ — equivalently, the suffix array of the
// sentinel-terminated reference. We provide:
//   * build_suffix_array       — linear-time SA-IS (Nong/Zhang/Chan), the
//                                 production path (Hg19-scale friendly);
//   * build_suffix_array_naive — O(n^2 log n) comparison sort used as the
//                                 test oracle.
//
// Both operate on the reference *with an implicit terminal sentinel* that is
// lexicographically smaller than every base, so the returned array has
// text.size()+1 entries and sa[0] == text.size() (the suffix "$").
#pragma once

#include <cstdint>
#include <vector>

#include "src/genome/packed_sequence.h"

namespace pim::index {

using SuffixArray = std::vector<std::uint32_t>;

/// Linear-time SA-IS. Throws std::invalid_argument for texts longer than
/// 2^31-2 (int32 internal indices; Hg19 per-chromosome fits comfortably).
SuffixArray build_suffix_array(const genome::PackedSequence& text);

/// Naive O(n^2 log n) oracle for tests.
SuffixArray build_suffix_array_naive(const genome::PackedSequence& text);

/// Validate that `sa` is a permutation of [0, n] sorted by suffix order.
/// Used by property tests; O(n^2) worst case, intended for small inputs.
bool is_valid_suffix_array(const genome::PackedSequence& text,
                           const SuffixArray& sa);

}  // namespace pim::index
