#include "src/index/sampled_sa.h"

#include <algorithm>
#include <stdexcept>

namespace pim::index {

SampledSuffixArray::SampledSuffixArray(const SuffixArray& sa, const Bwt& bwt,
                                       const CountTable& counts,
                                       std::uint32_t rate)
    : rate_(rate) {
  (void)counts;  // kept in the signature for symmetry with locate()
  if (rate == 0) throw std::invalid_argument("SampledSuffixArray: rate 0");
  if (sa.size() != bwt.size()) {
    throw std::invalid_argument("SampledSuffixArray: SA/BWT size mismatch");
  }
  sampled_rows_.resize(sa.size());
  for (std::size_t row = 0; row < sa.size(); ++row) {
    // Value-based sampling; row 0 (SA[0] == n, the '$' suffix) is always
    // marked so LF walks through the sentinel terminate.
    if (sa[row] % rate_ == 0 || row == 0) {
      sampled_rows_.set(row, true);
    }
  }
  auto& samples = samples_.vec();
  samples.reserve(sa.size() / rate_ + 2);
  for (std::size_t row = 0; row < sa.size(); ++row) {
    if (sampled_rows_.get(row)) samples.push_back(sa[row]);
  }
  // Rank directory: cumulative sampled count at each block boundary.
  const std::size_t blocks = sa.size() / kRankBlockBits + 1;
  auto& rank_blocks = rank_blocks_.vec();
  rank_blocks.resize(blocks + 1, 0);
  std::uint32_t running = 0;
  for (std::size_t b = 0; b < blocks; ++b) {
    rank_blocks[b] = running;
    const std::size_t begin = b * kRankBlockBits;
    const std::size_t end = std::min(begin + kRankBlockBits, sa.size());
    running +=
        static_cast<std::uint32_t>(sampled_rows_.popcount_range(begin, end));
  }
  rank_blocks[blocks] = running;
}

SampledSuffixArray SampledSuffixArray::from_parts(
    std::uint32_t rate, util::BitVector sampled_rows,
    util::Storage<std::uint32_t> rank_blocks,
    util::Storage<std::uint32_t> samples) {
  if (rate == 0) throw std::invalid_argument("SampledSuffixArray: rate 0");
  if (samples.size() != sampled_rows.popcount()) {
    throw std::invalid_argument(
        "SampledSuffixArray: samples/sampled-row count mismatch");
  }
  const std::size_t blocks = sampled_rows.size() / kRankBlockBits + 1;
  if (rank_blocks.size() != blocks + 1) {
    throw std::invalid_argument(
        "SampledSuffixArray: rank directory size mismatch");
  }
  if (rank_blocks.size() > 0 &&
      rank_blocks[rank_blocks.size() - 1] != samples.size()) {
    throw std::invalid_argument(
        "SampledSuffixArray: rank directory total mismatch");
  }
  if (!sampled_rows.empty() && !sampled_rows.get(0)) {
    throw std::invalid_argument(
        "SampledSuffixArray: row 0 must be sampled (LF walk terminator)");
  }
  SampledSuffixArray sa;
  sa.rate_ = rate;
  sa.sampled_rows_ = std::move(sampled_rows);
  sa.rank_blocks_ = std::move(rank_blocks);
  sa.samples_ = std::move(samples);
  return sa;
}

std::size_t SampledSuffixArray::rank_sampled(std::size_t row) const {
  const std::size_t block = row / kRankBlockBits;
  return rank_blocks_[block] +
         sampled_rows_.popcount_range(block * kRankBlockBits, row);
}

}  // namespace pim::index
