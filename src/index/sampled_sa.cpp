#include "src/index/sampled_sa.h"

#include <stdexcept>

namespace pim::index {

SampledSuffixArray::SampledSuffixArray(const SuffixArray& sa, const Bwt& bwt,
                                       const CountTable& counts,
                                       std::uint32_t rate)
    : rate_(rate) {
  (void)counts;  // kept in the signature for symmetry with locate()
  if (rate == 0) throw std::invalid_argument("SampledSuffixArray: rate 0");
  if (sa.size() != bwt.size()) {
    throw std::invalid_argument("SampledSuffixArray: SA/BWT size mismatch");
  }
  sampled_rows_.resize(sa.size());
  for (std::size_t row = 0; row < sa.size(); ++row) {
    // Value-based sampling; row 0 (SA[0] == n, the '$' suffix) is always
    // marked so LF walks through the sentinel terminate.
    if (sa[row] % rate_ == 0 || row == 0) {
      sampled_rows_.set(row, true);
    }
  }
  samples_.reserve(sa.size() / rate_ + 2);
  for (std::size_t row = 0; row < sa.size(); ++row) {
    if (sampled_rows_.get(row)) samples_.push_back(sa[row]);
  }
  // Rank directory: cumulative sampled count at each block boundary.
  const std::size_t blocks = sa.size() / kRankBlockBits + 1;
  rank_blocks_.resize(blocks + 1, 0);
  std::uint32_t running = 0;
  for (std::size_t b = 0; b < blocks; ++b) {
    rank_blocks_[b] = running;
    const std::size_t begin = b * kRankBlockBits;
    const std::size_t end = std::min(begin + kRankBlockBits, sa.size());
    running +=
        static_cast<std::uint32_t>(sampled_rows_.popcount_range(begin, end));
  }
  rank_blocks_[blocks] = running;
}

std::size_t SampledSuffixArray::rank_sampled(std::size_t row) const {
  const std::size_t block = row / kRankBlockBits;
  return rank_blocks_[block] +
         sampled_rows_.popcount_range(block * kRankBlockBits, row);
}

}  // namespace pim::index
