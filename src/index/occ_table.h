// Count table and Occurrence (FM-index) tables over the BWT (Fig. 2).
//
//  * CountTable: Count(nt) = number of symbols in reference$ lexicographically
//    smaller than nt (the '$' counts, so Count(A)=1).
//  * OccTable: full Occ[i][nt] = occurrences of nt in BWT[0, i). O(n) words —
//    the oracle the sampled structures are tested against.
//  * SampledOccTable: Occ checkpointed every d positions (bucket width d,
//    default 128 = one sub-array row of 128 bps). occ(nt, i) =
//    checkpoint + on-demand count of nt in BWT[i - i mod d, i) — exactly the
//    `marker + count_match` decomposition the PIM platform executes with
//    MEM + XNOR_Match.
//
// All tables apply the primary (sentinel) correction internally, so their
// counts refer to true base occurrences.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "src/index/bwt.h"
#include "src/util/storage.h"

namespace pim::index {

/// One checkpoint row: the per-base occurrence counts at a bucket boundary.
/// 16 bytes, no padding — serialized verbatim into the v2 index artifact
/// (and mapped back, so the layout is part of the on-disk format).
using OccCheckpoint = std::array<std::uint32_t, genome::kNumBases>;
static_assert(sizeof(OccCheckpoint) == genome::kNumBases * sizeof(std::uint32_t));

class CountTable {
 public:
  CountTable() = default;
  explicit CountTable(const Bwt& bwt);
  /// Reassemble from persisted arrays (v2 index artifact header).
  CountTable(const std::array<std::uint64_t, genome::kNumBases>& counts,
             const std::array<std::uint64_t, genome::kNumBases>& occurrences)
      : counts_(counts), occurrences_(occurrences) {}

  /// Symbols in reference$ smaller than `nt` (includes the sentinel).
  std::uint64_t count(genome::Base nt) const {
    return counts_[static_cast<std::size_t>(nt)];
  }
  /// Total occurrences of `nt` in the reference.
  std::uint64_t occurrences(genome::Base nt) const {
    return occurrences_[static_cast<std::size_t>(nt)];
  }

  const std::array<std::uint64_t, genome::kNumBases>& counts_raw() const {
    return counts_;
  }
  const std::array<std::uint64_t, genome::kNumBases>& occurrences_raw() const {
    return occurrences_;
  }

 private:
  std::array<std::uint64_t, genome::kNumBases> counts_{};
  std::array<std::uint64_t, genome::kNumBases> occurrences_{};
};

/// Full per-position Occ table; O(n) space, test oracle + small-n tool.
class OccTable {
 public:
  OccTable() = default;
  explicit OccTable(const Bwt& bwt);

  /// Occurrences of nt in BWT[0, i).
  std::uint64_t occ(genome::Base nt, std::size_t i) const {
    return table_[i][static_cast<std::size_t>(nt)];
  }

  std::size_t memory_bytes() const {
    return table_.size() * sizeof(table_[0]);
  }

 private:
  std::vector<std::array<std::uint32_t, genome::kNumBases>> table_;
};

class SampledOccTable {
 public:
  SampledOccTable() = default;
  SampledOccTable(const Bwt& bwt, std::uint32_t bucket_width);

  std::uint32_t bucket_width() const { return d_; }
  std::size_t num_checkpoints() const { return checkpoints_.size(); }

  /// Checkpoint value: occurrences of nt in BWT[0, k*d).
  std::uint64_t checkpoint(genome::Base nt, std::size_t k) const {
    return checkpoints_[k][static_cast<std::size_t>(nt)];
  }

  std::span<const OccCheckpoint> checkpoints() const {
    return checkpoints_.span();
  }

  /// Exact occ(nt, i) = checkpoint + residual scan of at most d-1 symbols.
  /// The residual scan is the software twin of the hardware XNOR_Match +
  /// DPU popcount.
  std::uint64_t occ(const Bwt& bwt, genome::Base nt, std::size_t i) const;

  /// The residual count alone: occurrences of nt in BWT[i - i mod d, i),
  /// with the sentinel-row correction. Exposed so the PIM controller can be
  /// checked stage-by-stage against software.
  std::uint64_t count_match(const Bwt& bwt, genome::Base nt, std::size_t i) const;

  std::size_t memory_bytes() const {
    return checkpoints_.size() * sizeof(checkpoints_[0]);
  }

 private:
  std::uint32_t d_ = 0;
  util::Storage<OccCheckpoint> checkpoints_;
};

}  // namespace pim::index
