#include "src/index/fm_index.h"

#include <algorithm>
#include <stdexcept>

namespace pim::index {

FmIndex FmIndex::build(const genome::PackedSequence& reference,
                       const FmIndexConfig& config) {
  return build_from_sa(reference, build_suffix_array(reference), config);
}

FmIndex FmIndex::build_from_sa(const genome::PackedSequence& reference,
                               const SuffixArray& sa,
                               const FmIndexConfig& config) {
  FmIndex index;
  index.config_ = config;
  index.bwt_ = build_bwt(reference, sa);
  index.counts_ = CountTable(index.bwt_);
  index.markers_ = MarkerTable(index.bwt_, index.counts_, config.bucket_width);
  index.sampled_sa_ =
      SampledSuffixArray(sa, index.bwt_, index.counts_, config.sa_sample_rate);
  return index;
}

FmIndex FmIndex::from_parts(const FmIndexConfig& config, Bwt bwt,
                            CountTable counts, MarkerTable markers,
                            SampledSuffixArray sampled_sa) {
  if (bwt.size() == 0) {
    throw std::invalid_argument("FmIndex::from_parts: empty BWT");
  }
  if (bwt.primary >= bwt.size()) {
    throw std::invalid_argument(
        "FmIndex::from_parts: primary row out of range");
  }
  if (markers.bucket_width() != config.bucket_width) {
    throw std::invalid_argument(
        "FmIndex::from_parts: marker bucket width != config");
  }
  if (markers.num_checkpoints() != bwt.size() / config.bucket_width + 1) {
    throw std::invalid_argument(
        "FmIndex::from_parts: marker row count inconsistent with BWT");
  }
  if (sampled_sa.sampled_rows().size() != bwt.size()) {
    throw std::invalid_argument(
        "FmIndex::from_parts: sampled-SA row count inconsistent with BWT");
  }
  FmIndex index;
  index.config_ = config;
  index.bwt_ = std::move(bwt);
  index.counts_ = std::move(counts);
  index.markers_ = std::move(markers);
  index.sampled_sa_ = std::move(sampled_sa);
  return index;
}

std::uint64_t FmIndex::locate(std::size_t row) const {
  return sampled_sa_.locate(
      bwt_, counts_, row,
      [this](genome::Base nt, std::size_t i) { return occ(nt, i); });
}

std::vector<std::uint64_t> FmIndex::locate_all(
    const SaInterval& interval) const {
  std::vector<std::uint64_t> positions;
  locate_all_into(interval, positions);
  return positions;
}

void FmIndex::locate_all_into(const SaInterval& interval,
                              std::vector<std::uint64_t>& out) const {
  out.clear();
  if (!interval.valid()) return;
  out.reserve(interval.count());
  for (std::uint64_t row = interval.low; row < interval.high; ++row) {
    out.push_back(locate(static_cast<std::size_t>(row)));
  }
  std::sort(out.begin(), out.end());
}

FmIndex::MemoryFootprint FmIndex::memory_footprint() const {
  MemoryFootprint fp;
  fp.bwt_bytes = bwt_.symbols.memory_bytes();
  fp.marker_bytes = markers_.memory_bytes();
  fp.sa_bytes = sampled_sa_.memory_bytes();
  return fp;
}

}  // namespace pim::index
