#include "src/index/bwt.h"

#include <array>
#include <stdexcept>
#include <vector>

namespace pim::index {

genome::Base Bwt::at(std::size_t i) const {
  if (i == primary) {
    throw std::logic_error("Bwt::at on the sentinel row; check is_sentinel()");
  }
  return symbols.at(i);
}

Bwt build_bwt(const genome::PackedSequence& text, const SuffixArray& sa) {
  if (sa.size() != text.size() + 1) {
    throw std::invalid_argument("build_bwt: SA size != text size + 1");
  }
  Bwt bwt;
  bool primary_seen = false;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    if (sa[i] == 0) {
      bwt.primary = static_cast<std::uint32_t>(i);
      bwt.symbols.push_back(Bwt::kSentinelFill);
      primary_seen = true;
    } else {
      bwt.symbols.push_back(text.at(sa[i] - 1));
    }
  }
  if (!primary_seen) {
    throw std::invalid_argument("build_bwt: SA does not contain index 0");
  }
  return bwt;
}

genome::PackedSequence invert_bwt(const Bwt& bwt) {
  const std::size_t n = bwt.size();
  if (n == 0) return genome::PackedSequence{};

  // LF mapping built by counting: LF(i) = C(bwt[i]) + occ(bwt[i], i), where
  // the sentinel row maps to row 0.
  std::array<std::size_t, genome::kNumBases> base_count{};
  for (std::size_t i = 0; i < n; ++i) {
    if (bwt.is_sentinel(i)) continue;
    ++base_count[static_cast<std::size_t>(bwt.symbols.at(i))];
  }
  std::array<std::size_t, genome::kNumBases> c{};
  std::size_t cumulative = 1;  // the sentinel is the single smallest symbol
  for (std::size_t a = 0; a < genome::kNumBases; ++a) {
    c[a] = cumulative;
    cumulative += base_count[a];
  }

  std::vector<std::size_t> lf(n);
  std::array<std::size_t, genome::kNumBases> running{};
  for (std::size_t i = 0; i < n; ++i) {
    if (bwt.is_sentinel(i)) {
      lf[i] = 0;
      continue;
    }
    const auto a = static_cast<std::size_t>(bwt.symbols.at(i));
    lf[i] = c[a] + running[a];
    ++running[a];
  }

  // Walk backwards from the sentinel row: row `primary`'s preceding char is
  // '$', i.e. row primary corresponds to the first text character.
  std::vector<genome::Base> reversed;
  reversed.reserve(n - 1);
  std::size_t row = bwt.primary;
  for (std::size_t step = 0; step + 1 < n; ++step) {
    // The character at text position (n-2-step) is bwt[row'] where row' walks
    // the LF chain starting at LF(primary)?  Equivalent, simpler statement:
    // T reconstructed back-to-front by reading bwt along the LF chain from
    // the row holding '$' in the first column (row 0) ... we instead start at
    // primary and pre-apply LF, reading the symbol before each jump.
    row = lf[row];  // first step: lf[primary] == 0, the '$'-first row
    if (bwt.is_sentinel(row)) {
      throw std::logic_error("invert_bwt: hit sentinel row mid-walk");
    }
    reversed.push_back(bwt.symbols.at(row));
  }
  genome::PackedSequence text;
  for (auto it = reversed.rbegin(); it != reversed.rend(); ++it) {
    text.push_back(*it);
  }
  return text;
}

}  // namespace pim::index
