#include "src/index/suffix_array.h"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace pim::index {

namespace {

using I = std::int32_t;

// ---------------------------------------------------------------------------
// SA-IS (Nong, Zhang, Chan 2009), following Yuta Mori's compact formulation.
// `t` is an integer string of length n over alphabet [0, k) whose last
// character is the unique smallest (the sentinel). `sa` has room for n.
// ---------------------------------------------------------------------------

void fill_bucket_bounds(const std::vector<I>& counts, std::vector<I>& bounds,
                        bool bucket_ends) {
  I sum = 0;
  for (std::size_t a = 0; a < counts.size(); ++a) {
    sum += counts[a];
    bounds[a] = bucket_ends ? sum : sum - counts[a];
  }
}

// Induced sort: given LMS suffixes already placed, derive L-type suffixes in
// a left-to-right pass, then S-type suffixes in a right-to-left pass.
void induce_sort(const I* t, I* sa, I n, const std::vector<bool>& is_s,
                 const std::vector<I>& counts, std::vector<I>& bounds) {
  fill_bucket_bounds(counts, bounds, /*bucket_ends=*/false);
  for (I i = 0; i < n; ++i) {
    const I j = sa[i];
    if (j > 0 && !is_s[static_cast<std::size_t>(j - 1)]) {
      sa[bounds[static_cast<std::size_t>(t[j - 1])]++] = j - 1;
    }
  }
  fill_bucket_bounds(counts, bounds, /*bucket_ends=*/true);
  for (I i = n - 1; i >= 0; --i) {
    const I j = sa[i];
    if (j > 0 && is_s[static_cast<std::size_t>(j - 1)]) {
      sa[--bounds[static_cast<std::size_t>(t[j - 1])]] = j - 1;
    }
  }
}

void sais(const I* t, I* sa, I n, I k) {
  if (n == 1) {  // just the sentinel
    sa[0] = 0;
    return;
  }

  // Classify suffixes: S-type if t[i..] < t[i+1..], L-type otherwise.
  std::vector<bool> is_s(static_cast<std::size_t>(n));
  is_s[static_cast<std::size_t>(n - 1)] = true;
  for (I i = n - 2; i >= 0; --i) {
    is_s[static_cast<std::size_t>(i)] =
        t[i] < t[i + 1] ||
        (t[i] == t[i + 1] && is_s[static_cast<std::size_t>(i + 1)]);
  }
  const auto is_lms = [&](I i) {
    return i > 0 && is_s[static_cast<std::size_t>(i)] &&
           !is_s[static_cast<std::size_t>(i - 1)];
  };

  std::vector<I> counts(static_cast<std::size_t>(k), 0);
  for (I i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(t[i])];
  std::vector<I> bounds(static_cast<std::size_t>(k));

  // Stage 1: approximately sort LMS suffixes by one round of induced sorting.
  std::fill(sa, sa + n, I{-1});
  fill_bucket_bounds(counts, bounds, /*bucket_ends=*/true);
  for (I i = 1; i < n; ++i) {
    if (is_lms(i)) sa[--bounds[static_cast<std::size_t>(t[i])]] = i;
  }
  induce_sort(t, sa, n, is_s, counts, bounds);

  // Compact the sorted LMS suffixes to the front of sa.
  I n1 = 0;
  for (I i = 0; i < n; ++i) {
    if (is_lms(sa[i])) sa[n1++] = sa[i];
  }

  // Name each LMS substring; equal substrings share a name.
  std::fill(sa + n1, sa + n, I{-1});
  I name_count = 0;
  I prev = -1;
  for (I i = 0; i < n1; ++i) {
    const I pos = sa[i];
    bool differs = (prev < 0);
    if (!differs) {
      for (I d = 0;; ++d) {
        if (t[pos + d] != t[prev + d] ||
            is_s[static_cast<std::size_t>(pos + d)] !=
                is_s[static_cast<std::size_t>(prev + d)]) {
          differs = true;
          break;
        }
        if (d > 0 && (is_lms(pos + d) || is_lms(prev + d))) {
          break;  // both LMS substrings ended equal
        }
      }
    }
    if (differs) {
      ++name_count;
      prev = pos;
    }
    sa[n1 + pos / 2] = name_count - 1;
  }
  for (I i = n - 1, j = n - 1; i >= n1; --i) {
    if (sa[i] >= 0) sa[j--] = sa[i];
  }

  // Stage 2: sort the reduced problem (LMS substring names in text order).
  I* const sa1 = sa;
  I* const t1 = sa + n - n1;
  if (name_count < n1) {
    sais(t1, sa1, n1, name_count);
  } else {
    for (I i = 0; i < n1; ++i) sa1[t1[i]] = i;
  }

  // Stage 3: place the now exactly-sorted LMS suffixes and induce once more.
  for (I i = 1, j = 0; i < n; ++i) {
    if (is_lms(i)) t1[j++] = i;  // t1[r] = text position of r-th LMS suffix
  }
  for (I i = 0; i < n1; ++i) sa1[i] = t1[sa1[i]];
  std::fill(sa + n1, sa + n, I{-1});
  fill_bucket_bounds(counts, bounds, /*bucket_ends=*/true);
  for (I i = n1 - 1; i >= 0; --i) {
    const I j = sa[i];
    sa[i] = -1;
    sa[--bounds[static_cast<std::size_t>(t[j])]] = j;
  }
  induce_sort(t, sa, n, is_s, counts, bounds);
}

// Build the int string reference$ with alphabet {$:0, A:1, C:2, G:3, T:4}.
std::vector<I> to_int_string(const genome::PackedSequence& text) {
  std::vector<I> t;
  t.reserve(text.size() + 1);
  for (std::size_t i = 0; i < text.size(); ++i) {
    t.push_back(static_cast<I>(text.at(i)) + 1);
  }
  t.push_back(0);  // sentinel
  return t;
}

}  // namespace

SuffixArray build_suffix_array(const genome::PackedSequence& text) {
  if (text.size() >
      static_cast<std::size_t>(std::numeric_limits<I>::max()) - 2) {
    throw std::invalid_argument("build_suffix_array: text too long for int32");
  }
  const std::vector<I> t = to_int_string(text);
  std::vector<I> sa(t.size());
  sais(t.data(), sa.data(), static_cast<I>(t.size()), 5);
  SuffixArray out(sa.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    out[i] = static_cast<std::uint32_t>(sa[i]);
  }
  return out;
}

SuffixArray build_suffix_array_naive(const genome::PackedSequence& text) {
  const std::size_t n = text.size() + 1;  // including sentinel
  SuffixArray sa(n);
  std::iota(sa.begin(), sa.end(), 0U);
  const auto suffix_less = [&](std::uint32_t a, std::uint32_t b) {
    // Compare suffixes of text$; sentinel is smaller than every base.
    while (true) {
      const bool a_end = a >= text.size();
      const bool b_end = b >= text.size();
      if (a_end || b_end) return a_end && !b_end;
      const auto ca = text.at(a);
      const auto cb = text.at(b);
      if (ca != cb) return ca < cb;
      ++a;
      ++b;
    }
  };
  std::sort(sa.begin(), sa.end(), suffix_less);
  return sa;
}

bool is_valid_suffix_array(const genome::PackedSequence& text,
                           const SuffixArray& sa) {
  const std::size_t n = text.size() + 1;
  if (sa.size() != n) return false;
  std::vector<bool> seen(n, false);
  for (const auto v : sa) {
    if (v >= n || seen[v]) return false;
    seen[v] = true;
  }
  const auto suffix_less_eq = [&](std::uint32_t a, std::uint32_t b) {
    while (true) {
      const bool a_end = a >= text.size();
      const bool b_end = b >= text.size();
      if (a_end) return true;            // "$..." <= anything
      if (b_end) return false;
      const auto ca = text.at(a);
      const auto cb = text.at(b);
      if (ca != cb) return ca < cb;
      ++a;
      ++b;
    }
  };
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (!suffix_less_eq(sa[i], sa[i + 1])) return false;
  }
  return true;
}

}  // namespace pim::index
