// Zero-copy index loading: mmap a v2 index artifact and assemble an FmIndex
// whose persisted structures (reference, BWT, marker rows, sampled SA)
// *borrow* the mapped bytes through the S42 Storage seam.
//
// Why this exists: the v1 load path deserializes the reference + SA and then
// REBUILDS the marker/count tables — O(n) work and ~2x transient memory
// before the first query. A mapped v2 artifact starts serving immediately:
// the kernel pages sections in on demand, clean pages are shared across
// every process mapping the same file, and cold-start cost collapses to
// header + section-table validation (see bench/index_load).
//
// Platform: mmap on POSIX (__unix__ / __APPLE__); elsewhere — or when the
// mapping fails — MappedIndex transparently falls back to the owned stream
// loader, so callers never need a platform branch. A v1 file handed to
// MappedIndex::open also falls back to the stream loader (v1 cannot be
// mapped: its tables are not stored).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/index/index_io.h"

namespace pim::index {

struct MappedIndexOptions {
  /// Verify every section's FNV-1a checksum at open. Costs one sequential
  /// pass over the file; catches on-disk corruption before it becomes a
  /// wrong alignment. Off = trust the artifact, open in O(header).
  bool verify_checksums = true;
  /// After verifying a section, advise the kernel to drop its pages
  /// (MADV_DONTNEED) so the verification pass does not leave the whole file
  /// resident: peak RSS at open stays ~one section, and pages fault back in
  /// lazily as queries touch them. No effect when not verifying or not
  /// mapped.
  bool drop_pages_after_verify = false;
};

/// RAII owner of one mapped index artifact: the mapping and the FmIndex
/// borrowing from it live and die as one unit. Move-only.
class MappedIndex {
 public:
  MappedIndex() = default;
  ~MappedIndex();
  MappedIndex(MappedIndex&& other) noexcept;
  MappedIndex& operator=(MappedIndex&& other) noexcept;
  MappedIndex(const MappedIndex&) = delete;
  MappedIndex& operator=(const MappedIndex&) = delete;

  /// Open and validate an artifact. Throws std::runtime_error (same error
  /// vocabulary as load_index: names the failing section) on a corrupt or
  /// foreign file. When `metrics` is set, publishes index.load.map_ms
  /// (mapped path) — the stream fallback publishes the index.load.* metrics
  /// of load_index instead.
  static MappedIndex open(const std::string& path,
                          const MappedIndexOptions& options = {},
                          obs::MetricsRegistry* metrics = nullptr);

  const FmIndex& index() const { return loaded_.index; }
  const genome::PackedSequence& reference() const { return loaded_.reference; }
  const std::vector<genome::Chromosome>& chromosomes() const {
    return loaded_.chromosomes;
  }
  /// See LoadedIndex::multi_reference — the result borrows from the mapping
  /// (when mapped) and must not outlive this MappedIndex.
  genome::MultiReference multi_reference() const {
    return loaded_.multi_reference();
  }

  /// True when the index borrows an mmap region; false on the stream-load
  /// fallback (owned structures).
  bool mapped() const { return map_base_ != nullptr; }
  std::uint64_t file_bytes() const { return file_bytes_; }

  /// Bytes this index keeps addressable: the mapping size when mapped
  /// (an upper bound on residency — pages fault in on demand), else the
  /// owned structures' heap bytes. The cache accounts residency with this.
  std::uint64_t resident_bytes() const;

 private:
  LoadedIndex loaded_;
  void* map_base_ = nullptr;
  std::size_t map_bytes_ = 0;
  std::uint64_t file_bytes_ = 0;

  void unmap() noexcept;
};

}  // namespace pim::index
