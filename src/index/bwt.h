// Burrows–Wheeler Transform of the sentinel-terminated reference.
//
// BWT(S$)[i] is the character preceding the i-th smallest suffix — the last
// column of the BW matrix of Fig. 1. The sentinel '$' appears exactly once,
// at row `primary`; since the platform stores the BWT 2-bit-packed (Fig. 6a),
// the sentinel cell holds a dummy base and `primary` is tracked by the DPU.
// Every consumer (Occ tables, XNOR_Match counting) applies the primary
// correction, keeping the software and in-memory paths bit-identical.
#pragma once

#include <cstdint>

#include "src/genome/packed_sequence.h"
#include "src/index/suffix_array.h"

namespace pim::index {

struct Bwt {
  /// Length n+1. Position `primary` holds kSentinelFill, not a real base.
  genome::PackedSequence symbols;
  /// Row of the BW matrix whose preceding character is '$' (i.e. SA[row]==0).
  std::uint32_t primary = 0;

  /// The dummy base stored at the sentinel position. A is the choice the
  /// hardware mapping uses; tests assert the correction logic makes its value
  /// irrelevant.
  static constexpr genome::Base kSentinelFill = genome::Base::A;

  std::size_t size() const { return symbols.size(); }

  bool is_sentinel(std::size_t i) const { return i == primary; }

  /// Base at row i; must not be the sentinel row.
  genome::Base at(std::size_t i) const;
};

/// Build the BWT from the reference and its (sentinel-inclusive) suffix array.
Bwt build_bwt(const genome::PackedSequence& text, const SuffixArray& sa);

/// Inverse transform (LF walk); reconstructs the original reference. Used by
/// the reversibility property tests.
genome::PackedSequence invert_bwt(const Bwt& bwt);

}  // namespace pim::index
