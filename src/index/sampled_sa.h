// Sampled suffix array for locate().
//
// The full SA is one of the three structures the paper keeps in memory
// (BWT, MT, SA — the ~12 GB footprint). To let users trade memory for locate
// latency we also provide value-based sampling: keep SA[i] whenever
// SA[i] % rate == 0, mark those rows in a rank-indexed bit vector, and
// recover unsampled rows by walking the LF mapping (each step moves one
// position back in the text, so at most rate-1 steps).
//
// All three member structures sit behind the S42 storage seam: built tables
// own their buffers, from_parts() borrows the samples / row-marks / rank
// directory straight out of a mapped index artifact.
#pragma once

#include <cstdint>
#include <span>

#include "src/index/bwt.h"
#include "src/index/occ_table.h"
#include "src/index/suffix_array.h"
#include "src/util/bit_vector.h"
#include "src/util/storage.h"

namespace pim::index {

class SampledSuffixArray {
 public:
  SampledSuffixArray() = default;

  /// rate == 1 stores the full SA (the paper's configuration).
  SampledSuffixArray(const SuffixArray& sa, const Bwt& bwt,
                     const CountTable& counts, std::uint32_t rate);

  /// Reassemble from persisted parts (owned or borrowed). `sampled_rows`
  /// must have one bit per SA row, `samples` one entry per set bit, and
  /// `rank_blocks` the cumulative popcount directory the sampling
  /// constructor builds (num_rows / 512 + 2 entries). Throws
  /// std::invalid_argument on inconsistent part sizes.
  static SampledSuffixArray from_parts(std::uint32_t rate,
                                       util::BitVector sampled_rows,
                                       util::Storage<std::uint32_t> rank_blocks,
                                       util::Storage<std::uint32_t> samples);

  std::uint32_t rate() const { return rate_; }

  /// Text position of the suffix at SA row `row`. `occ_oracle` supplies
  /// occ(nt, i); any implementation (full or sampled) may be plugged in.
  /// At most rate-1 LF steps.
  template <typename OccFn>
  std::uint64_t locate(const Bwt& bwt, const CountTable& counts,
                       std::size_t row, OccFn&& occ) const {
    std::uint64_t steps = 0;
    std::size_t r = row;
    while (!sampled_rows_.get(r)) {
      // LF step: the sentinel row maps to row 0 (which is always sampled,
      // because SA[0] = n and we force-mark it).
      if (bwt.is_sentinel(r)) {
        r = 0;
      } else {
        const auto nt = bwt.symbols.at(r);
        r = static_cast<std::size_t>(counts.count(nt) + occ(nt, r));
      }
      ++steps;
    }
    const std::uint64_t base = samples_[rank_sampled(r)];
    const std::uint64_t n_plus_1 = bwt.size();
    return (base + steps) % n_plus_1;
  }

  std::size_t num_samples() const { return samples_.size(); }
  std::size_t memory_bytes() const {
    return samples_.size() * sizeof(std::uint32_t) +
           sampled_rows_.size() / 8 + rank_blocks_.size() * sizeof(std::uint32_t);
  }

  // Raw parts, for serialization.
  const util::BitVector& sampled_rows() const { return sampled_rows_; }
  std::span<const std::uint32_t> rank_blocks() const {
    return rank_blocks_.span();
  }
  std::span<const std::uint32_t> samples() const { return samples_.span(); }

  static constexpr std::size_t kRankBlockBits = 512;

 private:
  /// Number of sampled rows strictly before `row` == index into samples_.
  std::size_t rank_sampled(std::size_t row) const;

  std::uint32_t rate_ = 1;
  util::BitVector sampled_rows_;
  /// Cumulative popcount per block.
  util::Storage<std::uint32_t> rank_blocks_;
  /// SA values at sampled rows.
  util::Storage<std::uint32_t> samples_;
};

}  // namespace pim::index
