// Marker Table (MT) — the paper's key pre-computed structure (Fig. 2).
//
// MT[nt][k] = SampledOcc[nt][k] + Count(nt): markers fold the Count table
// into the checkpoints so the LFM procedure becomes a single
// `marker + count_match` addition, which is what the IM_ADD in-memory adder
// computes. LFM(MT, nt, id) therefore returns the *updated interval bound*
// directly:
//     LFM(MT, nt, id) == Count(nt) + Occ(nt, id)
// which is the classic LF-mapping backward-search update.
//
// Marker rows live in Storage<OccCheckpoint> (S42): built tables own them;
// from_parts() lets the index loader borrow the marker section of a mapped
// artifact zero-copy.
#pragma once

#include <cstdint>
#include <span>

#include "src/index/bwt.h"
#include "src/index/occ_table.h"
#include "src/util/storage.h"

namespace pim::index {

class MarkerTable {
 public:
  MarkerTable() = default;
  MarkerTable(const Bwt& bwt, const CountTable& counts,
              std::uint32_t bucket_width);

  /// Reassemble from persisted marker rows (owned or borrowed). The row
  /// count must match the BWT the table will be queried with
  /// (bwt.size() / bucket_width + 1) — checked by FmIndex::from_parts.
  static MarkerTable from_parts(std::uint32_t bucket_width,
                                util::Storage<OccCheckpoint> markers);

  std::uint32_t bucket_width() const { return d_; }
  std::size_t num_checkpoints() const { return markers_.size(); }

  /// marker(nt, k) = Count(nt) + Occ(nt, k*d). 32-bit, as stored in the
  /// sub-array MT zone (4-byte values, Fig. 6a).
  std::uint32_t marker(genome::Base nt, std::size_t k) const {
    return markers_[k][static_cast<std::size_t>(nt)];
  }

  /// The hardware-friendly LFM procedure (Algorithm 1, line 9):
  /// returns Count(nt) + Occ(nt, id) using one marker read plus a residual
  /// count over at most d-1 BWT symbols.
  std::uint64_t lfm(const Bwt& bwt, genome::Base nt, std::size_t id) const;

  /// Raw marker rows, for serialization.
  std::span<const OccCheckpoint> rows() const { return markers_.span(); }

  std::size_t memory_bytes() const {
    return markers_.size() * sizeof(OccCheckpoint);
  }

 private:
  std::uint32_t d_ = 0;
  util::Storage<OccCheckpoint> markers_;
};

}  // namespace pim::index
