// Marker Table (MT) — the paper's key pre-computed structure (Fig. 2).
//
// MT[nt][k] = SampledOcc[nt][k] + Count(nt): markers fold the Count table
// into the checkpoints so the LFM procedure becomes a single
// `marker + count_match` addition, which is what the IM_ADD in-memory adder
// computes. LFM(MT, nt, id) therefore returns the *updated interval bound*
// directly:
//     LFM(MT, nt, id) == Count(nt) + Occ(nt, id)
// which is the classic LF-mapping backward-search update.
#pragma once

#include <cstdint>
#include <vector>

#include "src/index/bwt.h"
#include "src/index/occ_table.h"

namespace pim::index {

class MarkerTable {
 public:
  MarkerTable() = default;
  MarkerTable(const Bwt& bwt, const CountTable& counts,
              std::uint32_t bucket_width);

  std::uint32_t bucket_width() const { return d_; }
  std::size_t num_checkpoints() const { return markers_.size(); }

  /// marker(nt, k) = Count(nt) + Occ(nt, k*d). 32-bit, as stored in the
  /// sub-array MT zone (4-byte values, Fig. 6a).
  std::uint32_t marker(genome::Base nt, std::size_t k) const {
    return markers_[k][static_cast<std::size_t>(nt)];
  }

  /// The hardware-friendly LFM procedure (Algorithm 1, line 9):
  /// returns Count(nt) + Occ(nt, id) using one marker read plus a residual
  /// count over at most d-1 BWT symbols.
  std::uint64_t lfm(const Bwt& bwt, genome::Base nt, std::size_t id) const;

  std::size_t memory_bytes() const {
    return markers_.size() * sizeof(markers_[0]);
  }

 private:
  std::uint32_t d_ = 0;
  std::vector<std::array<std::uint32_t, genome::kNumBases>> markers_;
};

}  // namespace pim::index
