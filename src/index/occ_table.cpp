#include "src/index/occ_table.h"

#include <stdexcept>

namespace pim::index {

CountTable::CountTable(const Bwt& bwt) {
  for (std::size_t i = 0; i < bwt.size(); ++i) {
    if (bwt.is_sentinel(i)) continue;
    ++occurrences_[static_cast<std::size_t>(bwt.symbols.at(i))];
  }
  std::uint64_t cumulative = 1;  // '$' precedes everything
  for (std::size_t a = 0; a < genome::kNumBases; ++a) {
    counts_[a] = cumulative;
    cumulative += occurrences_[a];
  }
}

OccTable::OccTable(const Bwt& bwt) {
  table_.resize(bwt.size() + 1);
  std::array<std::uint32_t, genome::kNumBases> running{};
  table_[0] = running;
  for (std::size_t i = 0; i < bwt.size(); ++i) {
    if (!bwt.is_sentinel(i)) {
      ++running[static_cast<std::size_t>(bwt.symbols.at(i))];
    }
    table_[i + 1] = running;
  }
}

SampledOccTable::SampledOccTable(const Bwt& bwt, std::uint32_t bucket_width)
    : d_(bucket_width) {
  if (bucket_width == 0) {
    throw std::invalid_argument("SampledOccTable: bucket width must be > 0");
  }
  const std::size_t num_checkpoints = bwt.size() / d_ + 1;
  auto& checkpoints = checkpoints_.vec();
  checkpoints.resize(num_checkpoints);
  OccCheckpoint running{};
  checkpoints[0] = running;
  for (std::size_t i = 0; i < bwt.size(); ++i) {
    if (!bwt.is_sentinel(i)) {
      ++running[static_cast<std::size_t>(bwt.symbols.at(i))];
    }
    if ((i + 1) % d_ == 0) {
      checkpoints[(i + 1) / d_] = running;
    }
  }
}

std::uint64_t SampledOccTable::count_match(const Bwt& bwt, genome::Base nt,
                                           std::size_t i) const {
  const std::size_t start = i - (i % d_);
  std::uint64_t matches = 0;
  for (std::size_t pos = start; pos < i; ++pos) {
    if (bwt.is_sentinel(pos)) continue;
    if (bwt.symbols.at(pos) == nt) ++matches;
  }
  return matches;
}

std::uint64_t SampledOccTable::occ(const Bwt& bwt, genome::Base nt,
                                   std::size_t i) const {
  if (i > bwt.size()) throw std::out_of_range("SampledOccTable::occ");
  return checkpoint(nt, i / d_) + count_match(bwt, nt, i);
}

}  // namespace pim::index
