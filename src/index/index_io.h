// Binary serialization of the FM-index.
//
// Index construction is the one-time pre-computation of Fig. 2; production
// aligners build once and reuse. The format stores exactly the structures
// the paper persists — BWT (+primary), Marker Table parameters, sampled SA
// — plus a magic/version header and length-prefixed sections so corrupt or
// foreign files fail loudly instead of loading garbage.
//
// The marker table and count table are *rebuilt* from the BWT at load time
// (cheaper than their disk footprint at d=128), so the file holds the BWT,
// the SA samples, and the configuration.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "src/index/fm_index.h"

namespace pim::index {

inline constexpr std::uint32_t kIndexMagic = 0x50494D41;  // "PIMA"
inline constexpr std::uint32_t kIndexVersion = 1;

/// Serialize to a binary stream. Throws std::runtime_error on I/O failure.
void save_index(std::ostream& out, const FmIndex& index,
                const genome::PackedSequence& reference);
void save_index_file(const std::string& path, const FmIndex& index,
                     const genome::PackedSequence& reference);

struct LoadedIndex {
  FmIndex index;
  genome::PackedSequence reference;
};

/// Deserialize; throws std::runtime_error on bad magic, version mismatch,
/// truncation, or checksum failure.
LoadedIndex load_index(std::istream& in);
LoadedIndex load_index_file(const std::string& path);

}  // namespace pim::index
