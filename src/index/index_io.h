// Binary serialization of the FM-index — format v2 (S42).
//
// Index construction is the one-time pre-computation of Fig. 2; production
// aligners build once and reuse. Format v2 stores *every* persisted
// structure the paper names (BWT, Marker Table, SA) plus the packed
// reference and a per-chromosome table, laid out as 8-byte-aligned,
// length-prefixed, checksummed sections so that
//
//   * a corrupt or foreign file fails loudly, naming the failing section;
//   * every table is directly mappable in place: MappedIndex (see
//     mapped_index.h) mmaps the file and assembles an FmIndex whose
//     structures *borrow* the mapped bytes — zero copies, instant start,
//     page sharing across server processes.
//
// Layout (little-endian, all section offsets 8-byte aligned):
//
//   FileHeaderV2   magic/version/sizes, FM config, n, primary,
//                  Count table, header checksum
//   SectionEntry[] id, offset, payload bytes, FNV-1a checksum
//                  (+ trailing table checksum)
//   sections       reference | bwt | markers | sa-samples | sa-rows |
//                  sa-ranks | chromosomes   (zero-padded to 8 bytes)
//
// Format v1 (BWT + SA dump, marker/count tables rebuilt at load) is still
// *loaded* transparently — load_index dispatches on the version field —
// and save_index_v1 keeps the writer around for compatibility tests.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/genome/multi_reference.h"
#include "src/index/fm_index.h"
#include "src/obs/metrics.h"

namespace pim::index {

inline constexpr std::uint32_t kIndexMagic = 0x50494D41;  // "PIMA"
inline constexpr std::uint32_t kIndexVersionV1 = 1;
inline constexpr std::uint32_t kIndexVersion = 2;

/// Serialize to a binary stream in format v2. `chromosomes` (optional) is
/// the per-chromosome coordinate table of a MultiReference built over
/// `reference`; pass multi.chromosomes() to make the artifact round-trip a
/// multi-reference. Throws std::runtime_error on I/O failure,
/// std::invalid_argument on an index/reference mismatch or an empty
/// reference.
void save_index(std::ostream& out, const FmIndex& index,
                const genome::PackedSequence& reference,
                const std::vector<genome::Chromosome>& chromosomes = {});
void save_index_file(const std::string& path, const FmIndex& index,
                     const genome::PackedSequence& reference,
                     const std::vector<genome::Chromosome>& chromosomes = {});

/// The legacy v1 writer (BWT + full SA dump; marker/count tables rebuilt at
/// load). Kept so the v1 load path stays testable; new artifacts should be
/// v2.
void save_index_v1(std::ostream& out, const FmIndex& index,
                   const genome::PackedSequence& reference);

struct LoadedIndex {
  FmIndex index;
  genome::PackedSequence reference;
  /// Per-chromosome table when the artifact stored one (v2), else empty.
  std::vector<genome::Chromosome> chromosomes;

  /// Rebuild the MultiReference coordinate map (empty when no chromosome
  /// table was stored).
  genome::MultiReference multi_reference() const;
};

/// Deserialize either format version into owned structures. Throws
/// std::runtime_error naming the failing section on bad magic, unsupported
/// version, truncation, size inconsistency, or checksum failure.
///
/// When `metrics` is set, the load publishes its cost split so cold-start
/// claims are observable rather than asserted (see bench/index_load):
///   index.load.read_ms     — time spent reading + checksumming sections
///   index.load.rebuild_ms  — time spent *rebuilding* derived tables
///                            (v1 only: marker/count tables are not stored)
///   index.load.stream_ms   — total stream-load wall time
LoadedIndex load_index(std::istream& in,
                       obs::MetricsRegistry* metrics = nullptr);
LoadedIndex load_index_file(const std::string& path,
                            obs::MetricsRegistry* metrics = nullptr);

/// Section descriptor of a v2 file, for inspect/verify tooling.
struct IndexSectionInfo {
  std::string name;
  std::uint64_t offset = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t checksum = 0;
};

struct IndexFileInfo {
  std::uint32_t version = 0;
  std::uint32_t bucket_width = 0;
  std::uint32_t sa_sample_rate = 0;
  std::uint64_t reference_bases = 0;
  std::uint64_t file_bytes = 0;
  std::size_t num_chromosomes = 0;
  /// v2 only (v1 has no section table).
  std::vector<IndexSectionInfo> sections;
};

/// Parse headers + section table without loading payloads (v2) or scan the
/// v1 layout. Validates header integrity but not section payloads — use
/// load_index / MappedIndex::open with verification for that.
IndexFileInfo inspect_index_file(const std::string& path);

namespace detail {

/// FNV-1a over a byte range; the checksum every section carries.
std::uint64_t fnv1a(std::uint64_t hash, const void* data, std::size_t bytes);
inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;

/// Fixed v2 file header. Trivially copyable — written/read/mapped verbatim.
struct FileHeaderV2 {
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t header_bytes = 0;  ///< sizeof(FileHeaderV2), extension room.
  std::uint64_t file_bytes = 0;    ///< Total artifact size, for bounds checks.
  std::uint32_t bucket_width = 0;
  std::uint32_t sa_sample_rate = 0;
  std::uint64_t reference_bases = 0;  ///< n; BWT rows are n+1.
  std::uint32_t primary = 0;          ///< Sentinel row of the BWT.
  std::uint32_t num_sections = 0;
  std::uint64_t counts[genome::kNumBases] = {};       ///< Count table.
  std::uint64_t occurrences[genome::kNumBases] = {};  ///< Base tallies.
  std::uint64_t header_checksum = 0;  ///< FNV-1a over all preceding bytes.
};
static_assert(sizeof(FileHeaderV2) % 8 == 0);

enum class SectionId : std::uint32_t {
  kReference = 1,
  kBwt = 2,
  kMarkers = 3,
  kSaSamples = 4,
  kSaRows = 5,
  kSaRanks = 6,
  kChromosomes = 7,
};

struct SectionEntry {
  std::uint32_t id = 0;
  std::uint32_t reserved = 0;
  std::uint64_t offset = 0;         ///< From file start; 8-byte aligned.
  std::uint64_t payload_bytes = 0;  ///< Unpadded payload length.
  std::uint64_t checksum = 0;       ///< FNV-1a over the payload bytes.
};
static_assert(sizeof(SectionEntry) % 8 == 0);

const char* section_name(SectionId id);

/// Validate a v2 header + section table held in memory (the first
/// `table_end(header)` bytes of the file). Returns the section entries.
/// Throws std::runtime_error naming the failing piece.
std::vector<SectionEntry> validate_v2_layout(const FileHeaderV2& header,
                                             const SectionEntry* table,
                                             std::uint64_t actual_file_bytes);

/// Assemble an FmIndex + reference from v2 section buffers (owned or
/// borrowed Storage). Shared by the stream loader and MappedIndex.
LoadedIndex assemble_v2(const FileHeaderV2& header,
                        util::Storage<std::uint64_t> reference_words,
                        util::Storage<std::uint64_t> bwt_words,
                        util::Storage<OccCheckpoint> markers,
                        util::Storage<std::uint32_t> sa_samples,
                        util::Storage<std::uint64_t> sa_row_words,
                        util::Storage<std::uint32_t> sa_ranks,
                        std::vector<genome::Chromosome> chromosomes);

/// Decode the chromosomes section payload.
std::vector<genome::Chromosome> parse_chromosomes(const unsigned char* data,
                                                  std::size_t bytes);

}  // namespace detail

}  // namespace pim::index
