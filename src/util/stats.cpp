#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace pim::util {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram requires bins>0 and hi>lo");
  }
}

void Histogram::add(double x) {
  auto bin = static_cast<long>((x - lo_) / width_);
  bin = std::clamp<long>(bin, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin);
}
double Histogram::bin_hi(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

std::string Histogram::render(std::size_t max_bar_width) const {
  std::size_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    const auto width = static_cast<std::size_t>(
        static_cast<double>(counts_[b]) / static_cast<double>(peak) *
        static_cast<double>(max_bar_width));
    out << "  [" << bin_lo(b) << ", " << bin_hi(b) << ") "
        << std::string(std::max<std::size_t>(width, 1), '#') << " "
        << counts_[b] << "\n";
  }
  return out.str();
}

double quantile(std::vector<double> samples, double q) {
  if (samples.empty()) throw std::invalid_argument("quantile of empty sample");
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= samples.size()) return samples.back();
  return samples[idx] * (1.0 - frac) + samples[idx + 1] * frac;
}

}  // namespace pim::util
