// Aligned text tables for the benchmark harnesses: every figure/table of the
// paper is regenerated as rows printed through this formatter, so the bench
// output reads like the paper's plots in tabular form.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pim::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision; uses scientific
  /// notation when |x| >= 1e5 or 0 < |x| < 1e-2 (matching the log-scale axes
  /// of the paper's figures).
  static std::string num(double x, int precision = 3);

  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pim::util
