// Packed bit vector with word-level bulk operations and popcount.
//
// The PIM sub-array model stores rows as BitVectors and implements the bulk
// bit-wise primitives (AND3/MAJ/OR3/XOR3) as word-parallel operations over
// them, mirroring the bit-line parallelism of the hardware.
//
// Backed by Storage<uint64_t> (S42): built vectors own their words; load
// paths may borrow a read-only word region (a section of a mapped index
// artifact) zero-copy. Mutating a borrowed vector transparently copies it
// first (see Storage::ensure_owned).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "src/util/storage.h"

namespace pim::util {

class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::size_t num_bits, bool value = false);

  /// Borrow `num_bits` bits over a read-only word region of
  /// (num_bits + 63) / 64 words that must outlive the vector. Throws
  /// std::invalid_argument if the unused tail bits of the last word are not
  /// zero (the canonical form every owned BitVector maintains — a nonzero
  /// tail means the region is not a serialized BitVector).
  static BitVector borrowed(const std::uint64_t* words, std::size_t num_bits);

  /// Adopt a word buffer (owned or borrowed Storage) as `num_bits` bits.
  /// Throws std::invalid_argument on a word-count mismatch or nonzero tail
  /// bits. This is the deserialization entry point: the stream loader passes
  /// owned words, the mapped loader borrowed ones.
  static BitVector from_words(Storage<std::uint64_t> words,
                              std::size_t num_bits);

  std::size_t size() const { return num_bits_; }
  bool empty() const { return num_bits_ == 0; }

  bool get(std::size_t i) const {
    return (words_.data()[i >> 6] >> (i & 63)) & 1ULL;
  }
  void set(std::size_t i, bool value) {
    const std::uint64_t mask = 1ULL << (i & 63);
    if (value) {
      words_.vec()[i >> 6] |= mask;
    } else {
      words_.vec()[i >> 6] &= ~mask;
    }
  }

  void resize(std::size_t num_bits, bool value = false);
  void clear_all();
  void set_all();

  /// Number of set bits. Word-parallel (std::popcount per 64-bit word).
  std::size_t popcount() const;

  /// Number of set bits in the half-open bit range [begin, end).
  std::size_t popcount_range(std::size_t begin, std::size_t end) const;

  // Word-parallel bulk logic. Operands must have equal size.
  BitVector operator&(const BitVector& other) const;
  BitVector operator|(const BitVector& other) const;
  BitVector operator^(const BitVector& other) const;
  BitVector operator~() const;
  BitVector& operator&=(const BitVector& other);
  BitVector& operator|=(const BitVector& other);
  BitVector& operator^=(const BitVector& other);

  bool operator==(const BitVector& other) const;

  /// Three-operand majority: out bit = 1 iff at least two of (a,b,c) are 1.
  /// This is the carry of a full adder — exactly the MAJ3 in-memory primitive.
  static BitVector majority3(const BitVector& a, const BitVector& b,
                             const BitVector& c);
  /// Three-operand parity (XOR3) — the sum of a full adder.
  static BitVector xor3(const BitVector& a, const BitVector& b,
                        const BitVector& c);
  static BitVector and3(const BitVector& a, const BitVector& b,
                        const BitVector& c);
  static BitVector or3(const BitVector& a, const BitVector& b,
                       const BitVector& c);

  std::span<const std::uint64_t> words() const { return words_.span(); }
  /// True when the words are owned (heap) rather than borrowed (mapped).
  bool owns_storage() const { return words_.owned(); }

 private:
  void trim_tail();
  static void check_same_size(const BitVector& a, const BitVector& b);

  std::size_t num_bits_ = 0;
  Storage<std::uint64_t> words_;
};

}  // namespace pim::util
