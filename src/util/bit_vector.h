// Packed bit vector with word-level bulk operations and popcount.
//
// The PIM sub-array model stores rows as BitVectors and implements the bulk
// bit-wise primitives (AND3/MAJ/OR3/XOR3) as word-parallel operations over
// them, mirroring the bit-line parallelism of the hardware.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pim::util {

class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::size_t num_bits, bool value = false);

  std::size_t size() const { return num_bits_; }
  bool empty() const { return num_bits_ == 0; }

  bool get(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }
  void set(std::size_t i, bool value) {
    const std::uint64_t mask = 1ULL << (i & 63);
    if (value) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }

  void resize(std::size_t num_bits, bool value = false);
  void clear_all();
  void set_all();

  /// Number of set bits. Word-parallel (std::popcount per 64-bit word).
  std::size_t popcount() const;

  /// Number of set bits in the half-open bit range [begin, end).
  std::size_t popcount_range(std::size_t begin, std::size_t end) const;

  // Word-parallel bulk logic. Operands must have equal size.
  BitVector operator&(const BitVector& other) const;
  BitVector operator|(const BitVector& other) const;
  BitVector operator^(const BitVector& other) const;
  BitVector operator~() const;
  BitVector& operator&=(const BitVector& other);
  BitVector& operator|=(const BitVector& other);
  BitVector& operator^=(const BitVector& other);

  bool operator==(const BitVector& other) const;

  /// Three-operand majority: out bit = 1 iff at least two of (a,b,c) are 1.
  /// This is the carry of a full adder — exactly the MAJ3 in-memory primitive.
  static BitVector majority3(const BitVector& a, const BitVector& b,
                             const BitVector& c);
  /// Three-operand parity (XOR3) — the sum of a full adder.
  static BitVector xor3(const BitVector& a, const BitVector& b,
                        const BitVector& c);
  static BitVector and3(const BitVector& a, const BitVector& b,
                        const BitVector& c);
  static BitVector or3(const BitVector& a, const BitVector& b,
                       const BitVector& c);

  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  void trim_tail();
  static void check_same_size(const BitVector& a, const BitVector& b);

  std::size_t num_bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace pim::util
