// Lightweight statistics accumulators used by the Monte-Carlo device model
// and the benchmark harnesses: running mean/stddev/min/max and fixed-width
// histograms (for reproducing the V_sense distribution plots of Fig. 5b).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pim::util {

/// Welford running statistics: numerically stable single-pass mean/variance.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;        ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples are clamped into
/// the first/last bin so Monte-Carlo tails remain visible.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

  /// Render as a textual bar plot (one line per bin), used by fig5b bench.
  std::string render(std::size_t max_bar_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Quantile of a sample set (linear interpolation). Sorts a copy.
double quantile(std::vector<double> samples, double q);

}  // namespace pim::util
