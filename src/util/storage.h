// Storage<T> — the owned-or-borrowed buffer seam behind every persisted
// index structure (S42).
//
// Construction paths (SA-IS, BWT build, marker folding) own their buffers
// as plain std::vectors, exactly as before. Load paths may instead *borrow*
// a read-only region — in practice a section of an mmap-ed index artifact —
// so a genome-scale index is searchable without copying a byte off disk.
// Accessors branch on the mode (one perfectly-predicted branch per word
// access); mutation transparently copies a borrowed region into an owned
// vector first (copy-on-write), so no caller has to care which mode a
// structure is in.
//
// A borrowed Storage never outlives its region by contract: MappedIndex
// owns the mapping and the FmIndex borrowing from it as one unit.
#pragma once

#include <cstddef>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

namespace pim::util {

template <typename T>
class Storage {
  static_assert(std::is_trivially_copyable_v<T>,
                "Storage requires trivially copyable elements (they may be "
                "mapped straight from disk)");

 public:
  Storage() = default;
  /// Owned mode: adopt the vector. Implicit, so existing `vec_ = {...}`
  /// call sites keep compiling unchanged.
  Storage(std::vector<T> values) : vec_(std::move(values)) {}

  /// Borrowed mode: a read-only view over `count` elements at `data`
  /// (e.g. a section of a mapped file). The region must outlive this
  /// Storage and every copy of it.
  static Storage borrowed(const T* data, std::size_t count) {
    Storage s;
    s.borrowed_ = true;
    s.ext_ = data;
    s.ext_size_ = count;
    return s;
  }

  bool owned() const { return !borrowed_; }
  const T* data() const { return borrowed_ ? ext_ : vec_.data(); }
  std::size_t size() const { return borrowed_ ? ext_size_ : vec_.size(); }
  bool empty() const { return size() == 0; }
  const T& operator[](std::size_t i) const { return data()[i]; }
  std::span<const T> span() const { return {data(), size()}; }

  /// Heap bytes owned by this Storage (0 while borrowed — the bytes belong
  /// to the mapping). Resident-footprint accounting should use
  /// size() * sizeof(T) instead.
  std::size_t owned_bytes() const {
    return borrowed_ ? 0 : vec_.capacity() * sizeof(T);
  }

  /// Copy-on-write: after this call the Storage owns its elements. A no-op
  /// when already owned.
  void ensure_owned() {
    if (!borrowed_) return;
    vec_.assign(ext_, ext_ + ext_size_);
    borrowed_ = false;
    ext_ = nullptr;
    ext_size_ = 0;
  }

  /// Mutable owned vector; converts a borrowed region first.
  std::vector<T>& vec() {
    ensure_owned();
    return vec_;
  }

  bool operator==(const Storage& other) const {
    if (size() != other.size()) return false;
    return size() == 0 ||
           std::memcmp(data(), other.data(), size() * sizeof(T)) == 0;
  }

 private:
  std::vector<T> vec_;
  const T* ext_ = nullptr;
  std::size_t ext_size_ = 0;
  bool borrowed_ = false;
};

}  // namespace pim::util
