#include "src/util/config.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pim::util {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

std::string strip_comment(const std::string& line) {
  const auto hash = line.find('#');
  const auto slashes = line.find("//");
  auto cut = std::min(hash, slashes);
  return cut == std::string::npos ? line : line.substr(0, cut);
}

}  // namespace

Config Config::parse(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string line = trim(strip_comment(raw));
    if (line.empty()) continue;
    if (line.front() == '-') line = trim(line.substr(1));  // NVSim `-Key:` form
    const auto colon = line.find(':');
    if (colon == std::string::npos) {
      throw std::runtime_error("Config: missing ':' on line " +
                               std::to_string(line_no) + ": " + raw);
    }
    const std::string key = trim(line.substr(0, colon));
    const std::string value = trim(line.substr(colon + 1));
    if (key.empty()) {
      throw std::runtime_error("Config: empty key on line " +
                               std::to_string(line_no));
    }
    cfg.values_[key] = value;
  }
  return cfg;
}

Config Config::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Config: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}
void Config::set_double(const std::string& key, double value) {
  std::ostringstream out;
  out.precision(17);
  out << value;
  values_[key] = out.str();
}
void Config::set_int(const std::string& key, std::int64_t value) {
  values_[key] = std::to_string(value);
}

bool Config::contains(const std::string& key) const {
  return values_.count(key) != 0;
}

std::string Config::get_string(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) throw std::out_of_range("Config: missing key " + key);
  return it->second;
}

double Config::get_double(const std::string& key) const {
  const std::string v = get_string(key);
  try {
    std::size_t used = 0;
    const double parsed = std::stod(v, &used);
    if (!trim(v.substr(used)).empty()) {
      throw std::invalid_argument("trailing junk");
    }
    return parsed;
  } catch (const std::exception&) {
    throw std::runtime_error("Config: key " + key + " is not a number: " + v);
  }
}

std::int64_t Config::get_int(const std::string& key) const {
  const std::string v = get_string(key);
  try {
    std::size_t used = 0;
    const long long parsed = std::stoll(v, &used);
    if (!trim(v.substr(used)).empty()) {
      throw std::invalid_argument("trailing junk");
    }
    return parsed;
  } catch (const std::exception&) {
    throw std::runtime_error("Config: key " + key + " is not an integer: " + v);
  }
}

bool Config::get_bool(const std::string& key) const {
  std::string v = get_string(key);
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::runtime_error("Config: key " + key + " is not a bool: " + v);
}

std::string Config::get_string_or(const std::string& key,
                                  const std::string& dflt) const {
  return contains(key) ? get_string(key) : dflt;
}
double Config::get_double_or(const std::string& key, double dflt) const {
  return contains(key) ? get_double(key) : dflt;
}
std::int64_t Config::get_int_or(const std::string& key, std::int64_t dflt) const {
  return contains(key) ? get_int(key) : dflt;
}
bool Config::get_bool_or(const std::string& key, bool dflt) const {
  return contains(key) ? get_bool(key) : dflt;
}

Config Config::merged_with(const Config& other) const {
  Config out = *this;
  for (const auto& [k, v] : other.values_) out.values_[k] = v;
  return out;
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

std::string Config::to_cfg_text() const {
  std::ostringstream out;
  for (const auto& [k, v] : values_) out << "-" << k << ": " << v << "\n";
  return out.str();
}

}  // namespace pim::util
