// Deterministic, fast pseudo-random number generation for simulators and
// workload generators. All stochastic components of the reproduction
// (read simulator, Monte-Carlo device variation, synthetic genomes) take an
// explicit seed so every experiment is replayable.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace pim::util {

/// xoshiro256** by Blackman & Vigna — public-domain reference algorithm.
/// Small state, excellent statistical quality, much faster than std::mt19937
/// for the tens of millions of draws the read simulator performs.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding as recommended by the xoshiro authors: guarantees a
    // well-mixed state even for small consecutive seeds.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  constexpr std::uint64_t operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (rejection sampling;
  /// the rejection region is < bound/2^64, so retries are vanishingly rare).
  std::uint64_t bounded(std::uint64_t bound) {
    if (bound == 0) return 0;
    const std::uint64_t threshold = (0 - bound) % bound;
    while (true) {
      const std::uint64_t x = (*this)();
      if (x >= threshold) return x % bound;
    }
  }

  /// Standard normal via Box–Muller. Used for process-variation sampling.
  double gaussian(double mean = 0.0, double sigma = 1.0) {
    if (have_cached_) {
      have_cached_ = false;
      return mean + sigma * cached_;
    }
    double u1 = 0.0;
    do {
      u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * std::sin(theta);
    have_cached_ = true;
    return mean + sigma * r * std::cos(theta);
  }

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double cached_ = 0.0;
  bool have_cached_ = false;
};

}  // namespace pim::util
