// NVSim-style configuration handling.
//
// The paper's architectural simulator is built on NVSim, which is driven by
// `.cfg` files of `-Key: value` lines describing the array organisation. We
// reproduce that interface: a Config is an ordered key→string map parsed from
// cfg text, with typed getters. The pim::TimingEnergyModel and the chip-level
// accel models are constructed from Configs so array-organisation sweeps are
// plain data, exactly as in NVSim.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pim::util {

class Config {
 public:
  Config() = default;

  /// Parse cfg text: one `Key: value` (or NVSim's `-Key: value`) per line.
  /// '#' and '//' start comments; blank lines ignored. Later keys override
  /// earlier ones. Throws std::runtime_error on malformed lines.
  static Config parse(const std::string& text);
  /// Load and parse a cfg file from disk.
  static Config load_file(const std::string& path);

  void set(const std::string& key, const std::string& value);
  void set_double(const std::string& key, double value);
  void set_int(const std::string& key, std::int64_t value);

  bool contains(const std::string& key) const;

  /// Typed getters: the plain forms throw std::out_of_range when the key is
  /// missing; the `_or` forms return the provided default.
  std::string get_string(const std::string& key) const;
  double get_double(const std::string& key) const;
  std::int64_t get_int(const std::string& key) const;
  bool get_bool(const std::string& key) const;

  std::string get_string_or(const std::string& key, const std::string& dflt) const;
  double get_double_or(const std::string& key, double dflt) const;
  std::int64_t get_int_or(const std::string& key, std::int64_t dflt) const;
  bool get_bool_or(const std::string& key, bool dflt) const;

  /// Overlay: every key present in `other` overrides this config's value.
  Config merged_with(const Config& other) const;

  std::vector<std::string> keys() const;
  std::string to_cfg_text() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace pim::util
