#include "src/util/table.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace pim::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("TextTable: no headers");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double x, int precision) {
  std::ostringstream out;
  const double ax = std::fabs(x);
  if (ax != 0.0 && (ax >= 1e5 || ax < 1e-2)) {
    out << std::scientific << std::setprecision(precision) << x;
  } else {
    out << std::fixed << std::setprecision(precision) << x;
  }
  return out.str();
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << " " << std::left << std::setw(static_cast<int>(widths[c]))
          << row[c] << " |";
    }
    out << "\n";
  };
  emit_row(headers_);
  out << "|";
  for (const auto w : widths) out << std::string(w + 2, '-') << "|";
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

}  // namespace pim::util
