// Single-writer seqlock over a trivially copyable payload (S43).
//
// The fleet's per-chip hardware tallies and transfer tallies are written by
// exactly one thread (the chip's shard thread, or the fleet's driver) but
// scraped by observers at arbitrary times — a PeriodicReporter calling
// PimChipFleet::publish_metrics mid-run. A mutex on the tally write path
// would serialize chips against the scraper; plain fields would be a data
// race (the pre-S43 pim_fleet.h documented exactly that race). A seqlock
// gives wait-free writes and consistent snapshots: the writer bumps a
// sequence counter to odd, publishes the payload, bumps it to even; a
// reader retries until it observes the same even sequence on both sides of
// its copy.
//
// TSan-clean by construction: the payload is stored through relaxed atomic
// words (never through the raw struct), so there is no racing non-atomic
// access for the sanitizer to flag — the sequence counter's acquire/release
// pairs order the payload words. This is the "per-chip seqlock" option of
// the S43 design (the alternative — making every sub-array tally an atomic
// — would put an atomic RMW on the per-operation hot path).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace pim::util {

template <typename T>
class Seqlock {
  static_assert(std::is_trivially_copyable_v<T>,
                "Seqlock payload must be trivially copyable");

 public:
  Seqlock() { store(T{}); }
  explicit Seqlock(const T& initial) { store(initial); }
  Seqlock(const Seqlock&) = delete;
  Seqlock& operator=(const Seqlock&) = delete;

  /// Publish a new payload. Wait-free; must be called by ONE thread at a
  /// time (the single-writer contract — concurrent writers would interleave
  /// sequence bumps).
  void store(const T& value) {
    Words staged;
    staged.fill(0);  // zero the tail padding of the last word
    // void* casts: the payload is statically checked trivially copyable, so
    // byte copies are well-defined and -Wclass-memaccess has nothing to say.
    std::memcpy(staged.data(), static_cast<const void*>(&value), sizeof(T));
    const std::uint32_t seq = seq_.load(std::memory_order_relaxed);
    seq_.store(seq + 1, std::memory_order_relaxed);  // odd: write in flight
    std::atomic_thread_fence(std::memory_order_release);
    for (std::size_t i = 0; i < kWords; ++i) {
      words_[i].store(staged[i], std::memory_order_relaxed);
    }
    seq_.store(seq + 2, std::memory_order_release);  // even: consistent
  }

  /// Consistent snapshot of the last store(). Lock-free for the writer;
  /// the reader spins only while a store is in flight (stores are short:
  /// a fixed number of relaxed word stores).
  T load() const {
    Words staged;
    for (;;) {
      const std::uint32_t s1 = seq_.load(std::memory_order_acquire);
      if (s1 & 1U) continue;  // writer mid-publish
      for (std::size_t i = 0; i < kWords; ++i) {
        staged[i] = words_[i].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (seq_.load(std::memory_order_relaxed) == s1) break;
    }
    T value;
    std::memcpy(static_cast<void*>(&value), staged.data(), sizeof(T));
    return value;
  }

 private:
  static constexpr std::size_t kWords =
      (sizeof(T) + sizeof(std::uint64_t) - 1) / sizeof(std::uint64_t);
  struct Words {
    std::uint64_t w[kWords];
    std::uint64_t& operator[](std::size_t i) { return w[i]; }
    std::uint64_t* data() { return w; }
    void fill(std::uint64_t v) {
      for (std::size_t i = 0; i < kWords; ++i) w[i] = v;
    }
  };

  std::atomic<std::uint32_t> seq_{0};
  std::atomic<std::uint64_t> words_[kWords];
};

}  // namespace pim::util
