#include "src/util/bit_vector.h"

#include <bit>
#include <stdexcept>
#include <vector>

namespace pim::util {

namespace {
constexpr std::size_t words_for(std::size_t bits) { return (bits + 63) / 64; }
}  // namespace

BitVector::BitVector(std::size_t num_bits, bool value)
    : num_bits_(num_bits),
      words_(std::vector<std::uint64_t>(words_for(num_bits),
                                        value ? ~0ULL : 0ULL)) {
  trim_tail();
}

BitVector BitVector::borrowed(const std::uint64_t* words,
                              std::size_t num_bits) {
  return from_words(Storage<std::uint64_t>::borrowed(words, words_for(num_bits)),
                    num_bits);
}

BitVector BitVector::from_words(Storage<std::uint64_t> words,
                                std::size_t num_bits) {
  if (words.size() != words_for(num_bits)) {
    throw std::invalid_argument("BitVector::from_words: word count mismatch");
  }
  if (num_bits % 64 != 0 && !words.empty()) {
    const std::uint64_t tail = words[words.size() - 1];
    if ((tail & ~((1ULL << (num_bits & 63)) - 1)) != 0) {
      throw std::invalid_argument(
          "BitVector::from_words: nonzero bits past the end");
    }
  }
  BitVector v;
  v.num_bits_ = num_bits;
  v.words_ = std::move(words);
  return v;
}

void BitVector::resize(std::size_t num_bits, bool value) {
  const std::size_t old_bits = num_bits_;
  num_bits_ = num_bits;
  auto& words = words_.vec();
  words.resize(words_for(num_bits), value ? ~0ULL : 0ULL);
  if (value && num_bits > old_bits && old_bits % 64 != 0) {
    // Fill the tail of the previously-last word.
    words[old_bits >> 6] |= ~0ULL << (old_bits & 63);
  }
  trim_tail();
}

void BitVector::clear_all() {
  for (auto& w : words_.vec()) w = 0;
}

void BitVector::set_all() {
  for (auto& w : words_.vec()) w = ~0ULL;
  trim_tail();
}

void BitVector::trim_tail() {
  if (num_bits_ % 64 != 0 && !words_.empty()) {
    words_.vec().back() &= (1ULL << (num_bits_ & 63)) - 1;
  }
}

std::size_t BitVector::popcount() const {
  std::size_t total = 0;
  for (const auto w : words_.span()) {
    total += static_cast<std::size_t>(std::popcount(w));
  }
  return total;
}

std::size_t BitVector::popcount_range(std::size_t begin, std::size_t end) const {
  if (begin >= end) return 0;
  if (end > num_bits_) throw std::out_of_range("popcount_range past end");
  const std::uint64_t* words = words_.data();
  std::size_t total = 0;
  std::size_t first_word = begin >> 6;
  std::size_t last_word = (end - 1) >> 6;
  if (first_word == last_word) {
    std::uint64_t w = words[first_word];
    w >>= (begin & 63);
    const std::size_t span = end - begin;
    if (span < 64) w &= (1ULL << span) - 1;
    return static_cast<std::size_t>(std::popcount(w));
  }
  // Head word.
  total += static_cast<std::size_t>(std::popcount(words[first_word] >> (begin & 63)));
  // Middle words.
  for (std::size_t i = first_word + 1; i < last_word; ++i) {
    total += static_cast<std::size_t>(std::popcount(words[i]));
  }
  // Tail word.
  std::uint64_t tail = words[last_word];
  const std::size_t tail_bits = ((end - 1) & 63) + 1;
  if (tail_bits < 64) tail &= (1ULL << tail_bits) - 1;
  total += static_cast<std::size_t>(std::popcount(tail));
  return total;
}

void BitVector::check_same_size(const BitVector& a, const BitVector& b) {
  if (a.num_bits_ != b.num_bits_) {
    throw std::invalid_argument("BitVector size mismatch");
  }
}

BitVector BitVector::operator&(const BitVector& other) const {
  BitVector result = *this;
  result &= other;
  return result;
}
BitVector BitVector::operator|(const BitVector& other) const {
  BitVector result = *this;
  result |= other;
  return result;
}
BitVector BitVector::operator^(const BitVector& other) const {
  BitVector result = *this;
  result ^= other;
  return result;
}
BitVector BitVector::operator~() const {
  BitVector result = *this;
  for (auto& w : result.words_.vec()) w = ~w;
  result.trim_tail();
  return result;
}
BitVector& BitVector::operator&=(const BitVector& other) {
  check_same_size(*this, other);
  auto& words = words_.vec();
  for (std::size_t i = 0; i < words.size(); ++i) words[i] &= other.words_[i];
  return *this;
}
BitVector& BitVector::operator|=(const BitVector& other) {
  check_same_size(*this, other);
  auto& words = words_.vec();
  for (std::size_t i = 0; i < words.size(); ++i) words[i] |= other.words_[i];
  return *this;
}
BitVector& BitVector::operator^=(const BitVector& other) {
  check_same_size(*this, other);
  auto& words = words_.vec();
  for (std::size_t i = 0; i < words.size(); ++i) words[i] ^= other.words_[i];
  return *this;
}

bool BitVector::operator==(const BitVector& other) const {
  return num_bits_ == other.num_bits_ && words_ == other.words_;
}

BitVector BitVector::majority3(const BitVector& a, const BitVector& b,
                               const BitVector& c) {
  check_same_size(a, b);
  check_same_size(b, c);
  BitVector result(a.num_bits_);
  auto& out = result.words_.vec();
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::uint64_t x = a.words_[i];
    const std::uint64_t y = b.words_[i];
    const std::uint64_t z = c.words_[i];
    out[i] = (x & y) | (y & z) | (x & z);
  }
  return result;
}

BitVector BitVector::xor3(const BitVector& a, const BitVector& b,
                          const BitVector& c) {
  check_same_size(a, b);
  check_same_size(b, c);
  BitVector result(a.num_bits_);
  auto& out = result.words_.vec();
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = a.words_[i] ^ b.words_[i] ^ c.words_[i];
  }
  return result;
}

BitVector BitVector::and3(const BitVector& a, const BitVector& b,
                          const BitVector& c) {
  check_same_size(a, b);
  check_same_size(b, c);
  BitVector result(a.num_bits_);
  auto& out = result.words_.vec();
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = a.words_[i] & b.words_[i] & c.words_[i];
  }
  return result;
}

BitVector BitVector::or3(const BitVector& a, const BitVector& b,
                         const BitVector& c) {
  check_same_size(a, b);
  check_same_size(b, c);
  BitVector result(a.num_bits_);
  auto& out = result.words_.vec();
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = a.words_[i] | b.words_[i] | c.words_[i];
  }
  return result;
}

}  // namespace pim::util
