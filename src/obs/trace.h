// Scoped stage tracing (S40): TraceSpan is an RAII timer with nestable
// stage labels; completed spans land in a fixed-capacity ring-buffer
// TraceLog (oldest events overwritten), and optionally feed a Histogram so
// stage latency distributions accumulate in the MetricsRegistry.
//
// Cost model matches the metrics layer: a span with neither a log nor a
// histogram attached never reads the clock; labels are fixed-size char
// arrays so recording never allocates. The log takes a mutex per completed
// span — spans mark *stages* (a generation fill, a shard run, a chunk
// emission), not per-read work, so contention is negligible; per-read
// accounting belongs in counters.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <string_view>
#include <vector>

#include "src/obs/metrics.h"

namespace pim::obs {

struct TraceEvent {
  static constexpr std::size_t kLabelCap = 31;

  std::uint64_t seq = 0;       ///< Global completion order.
  std::uint32_t thread = 0;    ///< Small per-process thread ordinal.
  std::uint32_t depth = 0;     ///< Nesting depth within the thread.
  double start_ms = 0.0;       ///< Since the log's epoch.
  double duration_ms = 0.0;
  std::array<char, kLabelCap + 1> label{};

  std::string_view label_view() const { return label.data(); }
};

/// Fixed-capacity ring buffer of completed spans. Thread-safe; snapshot()
/// returns the retained events oldest-first.
class TraceLog {
 public:
  explicit TraceLog(std::size_t capacity = 4096);

  void record(std::string_view label, double start_ms, double duration_ms,
              std::uint32_t depth);

  /// Retained events, oldest first (at most capacity()).
  std::vector<TraceEvent> snapshot() const;
  std::size_t capacity() const { return events_.size(); }
  /// Total events ever recorded (>= retained count; shows ring overflow).
  std::uint64_t total_recorded() const;

  /// Milliseconds since this log's construction (span start stamps).
  double now_ms() const;

 private:
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::uint64_t next_seq_ = 0;
};

/// RAII stage timer. Nesting is tracked per thread: spans opened inside an
/// open span record depth+1, so a snapshot reconstructs the stage tree.
class TraceSpan {
 public:
  /// Either sink may be null; with both null the span is fully inert.
  explicit TraceSpan(TraceLog* log, std::string_view label,
                     Histogram histogram = {});
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Close early (records once; the destructor becomes a no-op).
  void finish();

 private:
  TraceLog* log_ = nullptr;
  Histogram histogram_;
  std::array<char, TraceEvent::kLabelCap + 1> label_{};
  std::chrono::steady_clock::time_point start_{};
  double start_ms_ = 0.0;
  std::uint32_t depth_ = 0;
  bool active_ = false;
};

}  // namespace pim::obs
