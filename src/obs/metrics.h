// Observability layer (S40): a process-wide metrics registry for the
// runtime layers grown since S37 (streaming pipeline, chunked scheduler,
// sharded fleet), which were black boxes at run time — EngineStats only
// surfaces after a batch completes.
//
// Design constraints, in priority order:
//   1. Near-zero cost when no sink is installed: every instrumentation
//      point holds a Counter/Gauge/Histogram *handle*; a default-constructed
//      handle is one branch per call, no atomics, no clock reads.
//   2. Lock-free hot path when installed: counters and histograms write to
//      per-thread shards (single writer per shard, relaxed atomics), so
//      threads never contend on an increment. Scrape merges the shards.
//      TSan-clean by construction: every shared cell is a std::atomic.
//   3. Deterministic totals at quiescence: after the instrumented threads
//      join, scrape() sums exactly the recorded increments (asserted
//      against post-hoc EngineStats in tests/test_obs.cpp).
//
// Registration (name -> id) takes a mutex and is expected at setup time,
// not per read. Metric names are flat strings; per-instance series use
// dotted indices ("shard.3.reads", "chip.1.energy_pj") so downstream JSON
// consumers need no label parsing.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace pim::obs {

class MetricsRegistry;

/// Handle to a monotonically increasing counter. Default-constructed
/// handles are inert (no registry): add() is one predictable branch.
class Counter {
 public:
  Counter() = default;
  inline void add(std::uint64_t delta = 1) const;
  bool installed() const { return registry_ != nullptr; }

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* registry, std::uint32_t id)
      : registry_(registry), id_(id) {}
  MetricsRegistry* registry_ = nullptr;
  std::uint32_t id_ = 0;
};

/// Handle to a last-write-wins gauge (one atomic double in the registry;
/// gauges are set rarely — per generation/run — so they are not sharded).
class Gauge {
 public:
  Gauge() = default;
  inline void set(double value) const;
  inline double value() const;  ///< 0.0 when inert.
  bool installed() const { return registry_ != nullptr; }

 private:
  friend class MetricsRegistry;
  Gauge(MetricsRegistry* registry, std::uint32_t id)
      : registry_(registry), id_(id) {}
  MetricsRegistry* registry_ = nullptr;
  std::uint32_t id_ = 0;
};

/// Handle to a log-bucketed histogram (count/sum/min/max + power-of-two
/// buckets, merged across thread shards on scrape).
class Histogram {
 public:
  Histogram() = default;
  inline void observe(double value) const;
  bool installed() const { return registry_ != nullptr; }

 private:
  friend class MetricsRegistry;
  Histogram(MetricsRegistry* registry, std::uint32_t id)
      : registry_(registry), id_(id) {}
  MetricsRegistry* registry_ = nullptr;
  std::uint32_t id_ = 0;
};

/// Merged view of one histogram at scrape time. Carries the merged bucket
/// counts, so arbitrary quantiles are computable post hoc via percentile()
/// — the canonical p50/p90/p95/p99 are precomputed for the JSON-line
/// schema and the human table.
struct HistogramSample {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;  ///< Bucket-interpolated percentiles (log buckets, so
  double p90 = 0.0;  ///< accurate to ~2x within a bucket — plenty for
  double p95 = 0.0;  ///< latency-shape questions). Always ordered:
  double p99 = 0.0;  ///< min <= p50 <= p90 <= p95 <= p99 <= max.
  /// Merged log2 bucket counts (MetricsRegistry::kNumBuckets entries; empty
  /// only for a default-constructed sample).
  std::vector<std::uint64_t> buckets;

  double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
  /// Bucket-interpolated quantile for q in [0, 1], clamped to [min, max];
  /// 0.0 when the histogram is empty. percentile(0.5) == p50 etc.
  double percentile(double q) const;
};

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

/// One consistent-enough view of the registry: counters and histograms are
/// merged over all thread shards with relaxed loads (exact once the writing
/// threads have joined; monotone under concurrency).
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// Value of a named counter/gauge; 0 when absent (test convenience).
  std::uint64_t counter_value(std::string_view name) const;
  double gauge_value(std::string_view name) const;
  const HistogramSample* histogram(std::string_view name) const;
};

class MetricsRegistry {
 public:
  /// Shard-capacity ceilings. Fixed capacities keep the per-thread shards
  /// plain arrays (no growth races, no locks on the hot path); registration
  /// past the ceiling throws std::length_error.
  static constexpr std::size_t kMaxCounters = 192;
  static constexpr std::size_t kMaxGauges = 160;
  static constexpr std::size_t kMaxHistograms = 64;
  static constexpr std::size_t kNumBuckets = 44;

  MetricsRegistry();
  ~MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Idempotent registration: the same name always yields the same handle.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name);

  /// Merge every thread shard into one snapshot (registration order).
  MetricsSnapshot scrape() const;

  std::size_t num_metrics() const;

  /// Bucket geometry, public so HistogramSample::percentile (and tests) can
  /// reason about the merged bucket counts a snapshot carries.
  static std::size_t bucket_of(double value);
  static double bucket_upper(std::size_t bucket);

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  struct HistCell {
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{0.0};
    std::atomic<double> max{0.0};
    std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets{};
  };

  /// One thread's private write surface: single writer (the owning thread),
  /// concurrent relaxed readers (scrape). Owned by the registry so thread
  /// exit never invalidates a scrape.
  struct Shard {
    std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
    std::array<HistCell, kMaxHistograms> histograms{};
  };

  void counter_add(std::uint32_t id, std::uint64_t delta);
  void gauge_set(std::uint32_t id, double value);
  double gauge_load(std::uint32_t id) const;
  void histogram_observe(std::uint32_t id, double value);
  Shard& local_shard();
  std::uint32_t register_name(std::vector<std::string>& names,
                              std::string_view name, std::size_t cap,
                              const char* kind);

  const std::uint64_t uid_;  ///< Process-unique; keys the thread-local cache.
  mutable std::mutex mu_;    ///< Guards names and the shard list.
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> histogram_names_;
  std::array<std::atomic<double>, kMaxGauges> gauges_{};
  std::vector<std::unique_ptr<Shard>> shards_;
};

inline void Counter::add(std::uint64_t delta) const {
  if (registry_ != nullptr) registry_->counter_add(id_, delta);
}

inline void Gauge::set(double value) const {
  if (registry_ != nullptr) registry_->gauge_set(id_, value);
}

inline double Gauge::value() const {
  return registry_ != nullptr ? registry_->gauge_load(id_) : 0.0;
}

inline void Histogram::observe(double value) const {
  if (registry_ != nullptr) registry_->histogram_observe(id_, value);
}

}  // namespace pim::obs
