#include "src/obs/reporter.h"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "src/util/table.h"

namespace pim::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // Remaining control characters: \u00XX. Dropping them (the old
          // behaviour) silently merged distinct names into one series.
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no inf/nan literal
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

namespace {

std::string escape(std::string_view s) { return json_escape(s); }

std::string num(double v) { return json_number(v); }

}  // namespace

void write_json_lines(const MetricsSnapshot& snapshot, std::ostream& out) {
  for (const auto& c : snapshot.counters) {
    out << "{\"metric\":\"" << escape(c.name)
        << "\",\"type\":\"counter\",\"value\":" << c.value << "}\n";
  }
  for (const auto& g : snapshot.gauges) {
    out << "{\"metric\":\"" << escape(g.name)
        << "\",\"type\":\"gauge\",\"value\":" << num(g.value) << "}\n";
  }
  for (const auto& h : snapshot.histograms) {
    out << "{\"metric\":\"" << escape(h.name)
        << "\",\"type\":\"histogram\",\"count\":" << h.count
        << ",\"sum\":" << num(h.sum) << ",\"min\":" << num(h.min)
        << ",\"max\":" << num(h.max) << ",\"mean\":" << num(h.mean())
        << ",\"p50\":" << num(h.p50) << ",\"p90\":" << num(h.p90)
        << ",\"p95\":" << num(h.p95) << ",\"p99\":" << num(h.p99) << "}\n";
  }
}

void write_json_lines(const std::vector<TraceEvent>& events,
                      std::ostream& out) {
  for (const auto& e : events) {
    out << "{\"trace\":\"" << escape(e.label_view()) << "\",\"seq\":" << e.seq
        << ",\"thread\":" << e.thread << ",\"depth\":" << e.depth
        << ",\"start_ms\":" << num(e.start_ms)
        << ",\"duration_ms\":" << num(e.duration_ms) << "}\n";
  }
}

std::string render_table(const MetricsSnapshot& snapshot) {
  std::string out;
  if (!snapshot.counters.empty() || !snapshot.gauges.empty()) {
    util::TextTable scalars({"metric", "type", "value"});
    for (const auto& c : snapshot.counters) {
      scalars.add_row({c.name, "counter", std::to_string(c.value)});
    }
    for (const auto& g : snapshot.gauges) {
      scalars.add_row({g.name, "gauge", num(g.value)});
    }
    out += scalars.render();
  }
  if (!snapshot.histograms.empty()) {
    util::TextTable hists({"histogram", "count", "mean", "min", "p50", "p90",
                           "p95", "p99", "max"});
    for (const auto& h : snapshot.histograms) {
      hists.add_row({h.name, std::to_string(h.count), num(h.mean()),
                     num(h.min), num(h.p50), num(h.p90), num(h.p95),
                     num(h.p99), num(h.max)});
    }
    if (!out.empty()) out += "\n";
    out += hists.render();
  }
  return out;
}

PeriodicReporter::PeriodicReporter(MetricsRegistry& registry,
                                   std::ostream& out,
                                   std::uint64_t interval_ms)
    : registry_(&registry),
      out_(&out),
      tick_counter_(registry.counter("obs.ticks")) {
  thread_ = std::thread([this, interval_ms]() { run(interval_ms); });
}

PeriodicReporter::~PeriodicReporter() { stop(); }

void PeriodicReporter::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopped_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lk(mu_);
  stopped_ = true;
}

void PeriodicReporter::run(std::uint64_t interval_ms) {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stopping_) {
    cv_.wait_for(lk, std::chrono::milliseconds(interval_ms),
                 [&] { return stopping_; });
    if (stopping_) break;
    lk.unlock();
    emit();
    lk.lock();
  }
  lk.unlock();
  emit();  // final scrape so short runs still produce one snapshot
}

void PeriodicReporter::emit() {
  tick_counter_.add();
  write_json_lines(registry_->scrape(), *out_);
  out_->flush();
  ticks_emitted_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace pim::obs
