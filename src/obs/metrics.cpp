#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pim::obs {

namespace {

std::uint64_t next_registry_uid() {
  static std::atomic<std::uint64_t> uid{0};
  return uid.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

std::uint64_t MetricsSnapshot::counter_value(std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

double MetricsSnapshot::gauge_value(std::string_view name) const {
  for (const auto& g : gauges) {
    if (g.name == name) return g.value;
  }
  return 0.0;
}

const HistogramSample* MetricsSnapshot::histogram(
    std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

MetricsRegistry::MetricsRegistry() : uid_(next_registry_uid()) {}

std::uint32_t MetricsRegistry::register_name(std::vector<std::string>& names,
                                             std::string_view name,
                                             std::size_t cap,
                                             const char* kind) {
  std::lock_guard<std::mutex> lk(mu_);
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<std::uint32_t>(i);
  }
  if (names.size() >= cap) {
    throw std::length_error(std::string("MetricsRegistry: too many ") + kind +
                            " metrics (cap " + std::to_string(cap) + ")");
  }
  names.emplace_back(name);
  return static_cast<std::uint32_t>(names.size() - 1);
}

Counter MetricsRegistry::counter(std::string_view name) {
  return Counter(this,
                 register_name(counter_names_, name, kMaxCounters, "counter"));
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  return Gauge(this, register_name(gauge_names_, name, kMaxGauges, "gauge"));
}

Histogram MetricsRegistry::histogram(std::string_view name) {
  return Histogram(
      this, register_name(histogram_names_, name, kMaxHistograms,
                          "histogram"));
}

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  // Thread-local cache keyed by the registry's process-unique uid (never a
  // raw pointer: a dead registry's address can be reused, its uid cannot).
  // Shards are owned by the registry, so entries for destroyed registries
  // are merely dead weight, never dangling dereferences — their uid can no
  // longer match a live registry.
  struct CacheEntry {
    std::uint64_t uid;
    Shard* shard;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const auto& entry : cache) {
    if (entry.uid == uid_) return *entry.shard;
  }
  auto shard = std::make_unique<Shard>();
  Shard* raw = shard.get();
  {
    std::lock_guard<std::mutex> lk(mu_);
    shards_.push_back(std::move(shard));
  }
  cache.push_back(CacheEntry{uid_, raw});
  return *raw;
}

void MetricsRegistry::counter_add(std::uint32_t id, std::uint64_t delta) {
  // Single writer per shard: a plain relaxed fetch_add never contends.
  local_shard().counters[id].fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::gauge_set(std::uint32_t id, double value) {
  gauges_[id].store(value, std::memory_order_relaxed);
}

double MetricsRegistry::gauge_load(std::uint32_t id) const {
  return gauges_[id].load(std::memory_order_relaxed);
}

std::size_t MetricsRegistry::bucket_of(double value) {
  // Log2 buckets spanning [2^-22, 2^21] ~ [2.4e-7, 2.1e6]: microseconds to
  // half an hour when the unit is milliseconds. Bucket 0 also absorbs
  // non-positive values; the top bucket absorbs overflow.
  if (!(value > 0.0)) return 0;
  const int e = static_cast<int>(std::ceil(std::log2(value)));
  const int idx = e + 22;
  return static_cast<std::size_t>(
      std::clamp(idx, 0, static_cast<int>(kNumBuckets) - 1));
}

double MetricsRegistry::bucket_upper(std::size_t bucket) {
  return std::ldexp(1.0, static_cast<int>(bucket) - 22);
}

void MetricsRegistry::histogram_observe(std::uint32_t id, double value) {
  HistCell& cell = local_shard().histograms[id];
  const std::uint64_t n = cell.count.load(std::memory_order_relaxed);
  // Single-writer cells: read-modify-write via plain load/store is safe and
  // cheaper than CAS; atomics keep concurrent scrapes race-free.
  cell.sum.store(cell.sum.load(std::memory_order_relaxed) + value,
                 std::memory_order_relaxed);
  if (n == 0 || value < cell.min.load(std::memory_order_relaxed)) {
    cell.min.store(value, std::memory_order_relaxed);
  }
  if (n == 0 || value > cell.max.load(std::memory_order_relaxed)) {
    cell.max.store(value, std::memory_order_relaxed);
  }
  cell.buckets[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
  // Count last: a scraper that sees count == n sums at least n bucket
  // entries, keeping in-flight percentile reads sane.
  cell.count.store(n + 1, std::memory_order_relaxed);
}

double HistogramSample::percentile(double q) const {
  if (count == 0 || buckets.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count - 1);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (static_cast<double>(seen) > rank) {
      // Clamp the bucket midpoint into the observed range so tiny samples
      // don't report values outside [min, max].
      const double mid =
          MetricsRegistry::bucket_upper(b) * 0.75;  // mid of [upper/2, upper]
      return std::clamp(mid, min, max);
    }
  }
  return max;
}

MetricsSnapshot MetricsRegistry::scrape() const {
  MetricsSnapshot snap;
  // Copy names and the shard list under the lock, then read cells relaxed:
  // shards are append-only and owned by the registry, so the raw pointers
  // stay valid for the registry's lifetime.
  std::vector<std::string> counter_names, gauge_names, histogram_names;
  std::vector<const Shard*> shards;
  {
    std::lock_guard<std::mutex> lk(mu_);
    counter_names = counter_names_;
    gauge_names = gauge_names_;
    histogram_names = histogram_names_;
    shards.reserve(shards_.size());
    for (const auto& s : shards_) shards.push_back(s.get());
  }

  snap.counters.reserve(counter_names.size());
  for (std::size_t i = 0; i < counter_names.size(); ++i) {
    std::uint64_t total = 0;
    for (const Shard* s : shards) {
      total += s->counters[i].load(std::memory_order_relaxed);
    }
    snap.counters.push_back(CounterSample{counter_names[i], total});
  }

  snap.gauges.reserve(gauge_names.size());
  for (std::size_t i = 0; i < gauge_names.size(); ++i) {
    snap.gauges.push_back(
        GaugeSample{gauge_names[i],
                    gauges_[i].load(std::memory_order_relaxed)});
  }

  snap.histograms.reserve(histogram_names.size());
  for (std::size_t i = 0; i < histogram_names.size(); ++i) {
    HistogramSample h;
    h.name = histogram_names[i];
    h.buckets.assign(kNumBuckets, 0);
    bool first = true;
    for (const Shard* s : shards) {
      const HistCell& cell = s->histograms[i];
      const std::uint64_t n = cell.count.load(std::memory_order_relaxed);
      if (n == 0) continue;
      h.count += n;
      h.sum += cell.sum.load(std::memory_order_relaxed);
      const double mn = cell.min.load(std::memory_order_relaxed);
      const double mx = cell.max.load(std::memory_order_relaxed);
      if (first || mn < h.min) h.min = mn;
      if (first || mx > h.max) h.max = mx;
      first = false;
      for (std::size_t b = 0; b < kNumBuckets; ++b) {
        h.buckets[b] += cell.buckets[b].load(std::memory_order_relaxed);
      }
    }
    h.p50 = h.percentile(0.50);
    h.p90 = h.percentile(0.90);
    h.p95 = h.percentile(0.95);
    h.p99 = h.percentile(0.99);
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

std::size_t MetricsRegistry::num_metrics() const {
  std::lock_guard<std::mutex> lk(mu_);
  return counter_names_.size() + gauge_names_.size() +
         histogram_names_.size();
}

}  // namespace pim::obs
