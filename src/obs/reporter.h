// Snapshot serialization (S40): machine-readable JSON lines (one metric or
// trace event per line, stable field names — tools/check_metrics_schema.py
// and tests/test_obs.cpp assert the schema) and an aligned human table.
// PeriodicReporter is the optional background emitter for long streaming
// runs: it scrapes the registry every interval and appends JSON lines to a
// stream, so progress is observable before the run completes.
//
// JSON-line schema (field renames MUST update the schema test + checker):
//   counter:   {"metric":NAME,"type":"counter","value":N}
//   gauge:     {"metric":NAME,"type":"gauge","value":X}
//   histogram: {"metric":NAME,"type":"histogram","count":N,"sum":S,
//               "min":m,"max":M,"mean":A,"p50":..,"p90":..,"p99":..}
//   trace:     {"trace":LABEL,"seq":N,"thread":T,"depth":D,
//               "start_ms":..,"duration_ms":..}
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace pim::obs {

/// One JSON line per counter/gauge/histogram, in registration order.
void write_json_lines(const MetricsSnapshot& snapshot, std::ostream& out);

/// One JSON line per retained trace event, oldest first.
void write_json_lines(const std::vector<TraceEvent>& events,
                      std::ostream& out);

/// Aligned human-readable table (counters+gauges, then histograms).
std::string render_table(const MetricsSnapshot& snapshot);

/// Background emitter: scrapes `registry` every `interval_ms` and appends
/// the snapshot as JSON lines to `out` (plus a final scrape at stop()).
/// Emissions are serialized internally; the caller must not write `out`
/// concurrently. Counts its own ticks as the "obs.ticks" counter.
class PeriodicReporter {
 public:
  PeriodicReporter(MetricsRegistry& registry, std::ostream& out,
                   std::uint64_t interval_ms);
  ~PeriodicReporter();
  PeriodicReporter(const PeriodicReporter&) = delete;
  PeriodicReporter& operator=(const PeriodicReporter&) = delete;

  /// Idempotent; joins the emitter thread after one final scrape.
  void stop();

  std::uint64_t ticks() const { return ticks_emitted_.load(); }

 private:
  void run(std::uint64_t interval_ms);
  void emit();

  MetricsRegistry* registry_;
  std::ostream* out_;
  Counter tick_counter_;
  std::atomic<std::uint64_t> ticks_emitted_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace pim::obs
