// Snapshot serialization (S40): machine-readable JSON lines (one metric or
// trace event per line, stable field names — tools/check_metrics_schema.py
// and tests/test_obs.cpp assert the schema) and an aligned human table.
// PeriodicReporter is the optional background emitter for long streaming
// runs: it scrapes the registry every interval and appends JSON lines to a
// stream, so progress is observable before the run completes.
//
// JSON-line schema (field renames MUST update the schema test + checker):
//   counter:   {"metric":NAME,"type":"counter","value":N}
//   gauge:     {"metric":NAME,"type":"gauge","value":X}
//   histogram: {"metric":NAME,"type":"histogram","count":N,"sum":S,
//               "min":m,"max":M,"mean":A,"p50":..,"p90":..,"p95":..,
//               "p99":..}
//   trace:     {"trace":LABEL,"seq":N,"thread":T,"depth":D,
//               "start_ms":..,"duration_ms":..}
//
// Every NAME/LABEL goes through json_escape and every number through
// json_number, so user-supplied strings (shard names, trace labels with
// quotes/backslashes/control bytes) and non-finite doubles (a gauge set to
// inf/nan) can never corrupt the line stream.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace pim::obs {

/// JSON string-escape `s` (RFC 8259): quotes, backslashes, and control
/// characters come out as \" \\ \n \r \t or \u00XX, so the result can be
/// embedded between double quotes verbatim. Public because benches and
/// examples emit their own JSON lines around the metric stream and must
/// escape user-supplied values the same way.
std::string json_escape(std::string_view s);

/// Render a double as a JSON number. Non-finite values have no JSON
/// representation and would corrupt a line stream ("inf" / "nan" are not
/// JSON); they are mapped to 0 — metric emitters should guard the division
/// instead of relying on this backstop.
std::string json_number(double v);

/// One JSON line per counter/gauge/histogram, in registration order.
void write_json_lines(const MetricsSnapshot& snapshot, std::ostream& out);

/// One JSON line per retained trace event, oldest first.
void write_json_lines(const std::vector<TraceEvent>& events,
                      std::ostream& out);

/// Aligned human-readable table (counters+gauges, then histograms).
std::string render_table(const MetricsSnapshot& snapshot);

/// Background emitter: scrapes `registry` every `interval_ms` and appends
/// the snapshot as JSON lines to `out` (plus a final scrape at stop()).
/// Emissions are serialized internally; the caller must not write `out`
/// concurrently. Counts its own ticks as the "obs.ticks" counter.
class PeriodicReporter {
 public:
  PeriodicReporter(MetricsRegistry& registry, std::ostream& out,
                   std::uint64_t interval_ms);
  ~PeriodicReporter();
  PeriodicReporter(const PeriodicReporter&) = delete;
  PeriodicReporter& operator=(const PeriodicReporter&) = delete;

  /// Idempotent; joins the emitter thread after one final scrape.
  void stop();

  std::uint64_t ticks() const { return ticks_emitted_.load(); }

 private:
  void run(std::uint64_t interval_ms);
  void emit();

  MetricsRegistry* registry_;
  std::ostream* out_;
  Counter tick_counter_;
  std::atomic<std::uint64_t> ticks_emitted_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace pim::obs
