#include "src/obs/trace.h"

#include <algorithm>
#include <atomic>

namespace pim::obs {

namespace {

std::uint32_t thread_ordinal() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

/// Per-thread open-span depth, shared across logs: nesting is a property
/// of the call stack, not of the sink.
thread_local std::uint32_t t_depth = 0;

void copy_label(std::string_view label,
                std::array<char, TraceEvent::kLabelCap + 1>& out) {
  const std::size_t n = std::min(label.size(), TraceEvent::kLabelCap);
  std::memcpy(out.data(), label.data(), n);
  out[n] = '\0';
}

}  // namespace

TraceLog::TraceLog(std::size_t capacity)
    : epoch_(std::chrono::steady_clock::now()),
      events_(std::max<std::size_t>(1, capacity)) {}

double TraceLog::now_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceLog::record(std::string_view label, double start_ms,
                      double duration_ms, std::uint32_t depth) {
  std::lock_guard<std::mutex> lk(mu_);
  TraceEvent& slot = events_[next_seq_ % events_.size()];
  slot.seq = next_seq_++;
  slot.thread = thread_ordinal();
  slot.depth = depth;
  slot.start_ms = start_ms;
  slot.duration_ms = duration_ms;
  copy_label(label, slot.label);
}

std::vector<TraceEvent> TraceLog::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<TraceEvent> out;
  const std::size_t cap = events_.size();
  const std::uint64_t retained = std::min<std::uint64_t>(next_seq_, cap);
  out.reserve(retained);
  for (std::uint64_t i = next_seq_ - retained; i < next_seq_; ++i) {
    out.push_back(events_[i % cap]);
  }
  return out;
}

std::uint64_t TraceLog::total_recorded() const {
  std::lock_guard<std::mutex> lk(mu_);
  return next_seq_;
}

TraceSpan::TraceSpan(TraceLog* log, std::string_view label,
                     Histogram histogram)
    : log_(log), histogram_(histogram) {
  if (log_ == nullptr && !histogram_.installed()) return;  // fully inert
  copy_label(label, label_);
  depth_ = t_depth++;
  start_ = std::chrono::steady_clock::now();
  if (log_ != nullptr) start_ms_ = log_->now_ms();
  active_ = true;
}

void TraceSpan::finish() {
  if (!active_) return;
  active_ = false;
  --t_depth;
  const double duration_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start_)
          .count();
  if (log_ != nullptr) {
    log_->record(label_.data(), start_ms_, duration_ms, depth_);
  }
  histogram_.observe(duration_ms);
}

TraceSpan::~TraceSpan() { finish(); }

}  // namespace pim::obs
