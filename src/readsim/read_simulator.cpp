#include "src/readsim/read_simulator.h"

#include <stdexcept>

#include "src/util/rng.h"

namespace pim::readsim {

namespace {

genome::Base mutate(pim::util::Xoshiro256& rng, genome::Base b) {
  const auto offset = static_cast<std::uint8_t>(rng.bounded(3)) + 1;
  return static_cast<genome::Base>((static_cast<std::uint8_t>(b) + offset) % 4);
}

genome::Base random_base(pim::util::Xoshiro256& rng) {
  return static_cast<genome::Base>(rng.bounded(4));
}

}  // namespace

double ReadSet::exact_fraction() const {
  if (reads.empty()) return 0.0;
  std::size_t exact = 0;
  for (const auto& r : reads) {
    if (r.is_exact()) ++exact;
  }
  return static_cast<double>(exact) / static_cast<double>(reads.size());
}

ReadSet ReadSimulator::generate(const genome::PackedSequence& reference) const {
  if (reference.size() < spec_.read_length) {
    throw std::invalid_argument("ReadSimulator: reference shorter than read");
  }
  pim::util::Xoshiro256 rng(spec_.seed);
  ReadSet set;
  set.reads.reserve(spec_.num_reads);

  // Draw a slightly longer window than the read so deletion errors can still
  // fill the read to full length.
  const std::uint32_t window =
      spec_.read_length + (spec_.indel_error_rate > 0.0 ? 8 : 0);

  for (std::uint64_t r = 0; r < spec_.num_reads; ++r) {
    const std::uint64_t max_start = reference.size() - window;
    const std::uint64_t start = rng.bounded(max_start + 1);

    SimulatedRead read;
    read.origin = start;
    read.reverse_strand =
        spec_.sample_both_strands && rng.bernoulli(0.5);

    // Fragment from the donor haplotype: reference bases with population
    // variants applied on the fly (each sampled fragment re-draws variants;
    // at 0.1% per base this models individual-vs-reference divergence).
    std::vector<genome::Base> fragment;
    fragment.reserve(window);
    for (std::uint32_t k = 0; k < window; ++k) {
      genome::Base b = reference.at(start + k);
      if (rng.bernoulli(spec_.population_variation_rate)) {
        b = mutate(rng, b);
        ++read.substitutions;
      }
      fragment.push_back(b);
    }
    if (read.reverse_strand) {
      fragment = genome::reverse_complement(fragment);
    }

    // Per-cycle sequencing error rate: linear ramp toward the 3' end
    // (Illumina-like), mean preserved at the configured rate.
    const auto error_rate_at = [&](std::size_t cycle) {
      if (spec_.error_ramp == 0.0 || spec_.read_length <= 1) {
        return spec_.sequencing_error_rate;
      }
      const double frac = static_cast<double>(cycle) /
                          static_cast<double>(spec_.read_length - 1);
      return spec_.sequencing_error_rate *
             (1.0 + spec_.error_ramp * (frac - 0.5));
    };

    // Sequencing: copy bases out of the fragment applying error processes.
    read.bases.reserve(spec_.read_length);
    if (spec_.emit_qualities) read.qualities.reserve(spec_.read_length);
    std::size_t src = 0;
    while (read.bases.size() < spec_.read_length && src < fragment.size()) {
      if (spec_.indel_error_rate > 0.0 &&
          rng.bernoulli(spec_.indel_error_rate)) {
        if (rng.bernoulli(0.5)) {
          // Insertion error: emit a random base, do not consume the fragment.
          if (spec_.emit_qualities) {
            read.qualities.push_back(genome::phred_to_char(2));
          }
          read.bases.push_back(random_base(rng));
          ++read.insertions;
          continue;
        }
        // Deletion error: skip a fragment base.
        ++src;
        ++read.deletions;
        continue;
      }
      const double p_error = error_rate_at(read.bases.size());
      genome::Base b = fragment[src++];
      if (rng.bernoulli(p_error)) {
        b = mutate(rng, b);
        ++read.substitutions;
      }
      if (spec_.emit_qualities) {
        read.qualities.push_back(
            genome::phred_to_char(genome::error_probability_to_phred(p_error)));
      }
      read.bases.push_back(b);
    }
    // Pad in the (vanishingly rare) case deletions exhausted the window.
    while (read.bases.size() < spec_.read_length) {
      if (spec_.emit_qualities) {
        read.qualities.push_back(genome::phred_to_char(2));
      }
      read.bases.push_back(random_base(rng));
      ++read.insertions;
    }
    set.reads.push_back(std::move(read));
  }
  return set;
}

std::vector<genome::FastqRecord> to_fastq(const ReadSet& set,
                                          const std::string& prefix) {
  std::vector<genome::FastqRecord> records;
  records.reserve(set.reads.size());
  for (std::size_t i = 0; i < set.reads.size(); ++i) {
    const auto& read = set.reads[i];
    genome::FastqRecord rec;
    rec.name = prefix + std::to_string(i) + " origin=" +
               std::to_string(read.origin) +
               (read.reverse_strand ? " strand=-" : " strand=+");
    rec.sequence = genome::PackedSequence(read.bases);
    rec.qualities = read.qualities.empty()
                        ? std::string(read.bases.size(),
                                      genome::phred_to_char(30))
                        : read.qualities;
    records.push_back(std::move(rec));
  }
  return records;
}

}  // namespace pim::readsim
