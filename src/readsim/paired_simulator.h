// Paired-end read simulation (Illumina FR libraries).
//
// Real short-read data comes in pairs: a DNA fragment of ~insert_mean bp is
// sequenced from both ends, read 1 from the 5' end forward, read 2 from the
// 3' end reverse-complemented. The pair's insert-size constraint is what
// lets aligners rescue a repeat-ambiguous mate — the pairing logic in
// align/paired.h consumes exactly the ground truth this simulator records.
#pragma once

#include <cstdint>
#include <vector>

#include "src/genome/packed_sequence.h"
#include "src/readsim/read_simulator.h"

namespace pim::readsim {

struct PairedReadSimSpec {
  ReadSimSpec base;               ///< Per-read length/error/quality knobs.
  std::uint32_t insert_mean = 300;
  std::uint32_t insert_sd = 30;
  /// Fragments are sampled from both genome strands when the base spec's
  /// sample_both_strands is set (flipping which mate is forward).
};

struct SimulatedPair {
  SimulatedRead read1;  ///< 5' mate (forward on the fragment).
  SimulatedRead read2;  ///< 3' mate (reverse-complemented).
  std::uint64_t fragment_start = 0;  ///< Forward-genome coordinates.
  std::uint32_t insert_size = 0;
  bool fragment_reverse = false;  ///< Fragment drawn from the minus strand.
};

struct PairedReadSet {
  std::vector<SimulatedPair> pairs;
};

class PairedReadSimulator {
 public:
  explicit PairedReadSimulator(const PairedReadSimSpec& spec) : spec_(spec) {}

  /// Generate base.num_reads pairs. Throws std::invalid_argument when the
  /// reference is shorter than the largest possible insert or the insert
  /// cannot contain two reads.
  PairedReadSet generate(const genome::PackedSequence& reference) const;

  const PairedReadSimSpec& spec() const { return spec_; }

 private:
  PairedReadSimSpec spec_;
};

}  // namespace pim::readsim
