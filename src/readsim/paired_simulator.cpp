#include "src/readsim/paired_simulator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/genome/fastq.h"
#include "src/util/rng.h"

namespace pim::readsim {

namespace {

genome::Base mutate(pim::util::Xoshiro256& rng, genome::Base b) {
  const auto offset = static_cast<std::uint8_t>(rng.bounded(3)) + 1;
  return static_cast<genome::Base>((static_cast<std::uint8_t>(b) + offset) % 4);
}

/// Sequence one mate from a fragment-oriented template: substitution errors
/// at the spec's rate (with the 3' ramp), optional qualities. The template
/// must already be in read orientation.
SimulatedRead sequence_mate(const std::vector<genome::Base>& mate_template,
                            const ReadSimSpec& spec,
                            pim::util::Xoshiro256& rng) {
  SimulatedRead read;
  read.bases.reserve(mate_template.size());
  if (spec.emit_qualities) read.qualities.reserve(mate_template.size());
  for (std::size_t i = 0; i < mate_template.size(); ++i) {
    double p_error = spec.sequencing_error_rate;
    if (spec.error_ramp != 0.0 && mate_template.size() > 1) {
      const double frac = static_cast<double>(i) /
                          static_cast<double>(mate_template.size() - 1);
      p_error *= 1.0 + spec.error_ramp * (frac - 0.5);
    }
    genome::Base b = mate_template[i];
    if (rng.bernoulli(p_error)) {
      b = mutate(rng, b);
      ++read.substitutions;
    }
    if (spec.emit_qualities) {
      read.qualities.push_back(
          genome::phred_to_char(genome::error_probability_to_phred(p_error)));
    }
    read.bases.push_back(b);
  }
  return read;
}

}  // namespace

PairedReadSet PairedReadSimulator::generate(
    const genome::PackedSequence& reference) const {
  const auto& base = spec_.base;
  const std::uint32_t max_insert = spec_.insert_mean + 4 * spec_.insert_sd;
  if (spec_.insert_mean < 2 * base.read_length) {
    throw std::invalid_argument(
        "PairedReadSimulator: insert smaller than two reads");
  }
  if (reference.size() < max_insert) {
    throw std::invalid_argument(
        "PairedReadSimulator: reference shorter than the largest insert");
  }
  pim::util::Xoshiro256 rng(base.seed);
  PairedReadSet set;
  set.pairs.reserve(base.num_reads);

  for (std::uint64_t p = 0; p < base.num_reads; ++p) {
    // Fragment: Gaussian insert clamped to feasible bounds.
    const double drawn = rng.gaussian(static_cast<double>(spec_.insert_mean),
                                      static_cast<double>(spec_.insert_sd));
    const std::uint32_t insert = std::clamp<std::uint32_t>(
        static_cast<std::uint32_t>(std::lround(drawn)), 2 * base.read_length,
        max_insert);
    const std::uint64_t start = rng.bounded(reference.size() - insert + 1);

    SimulatedPair pair;
    pair.fragment_start = start;
    pair.insert_size = insert;
    pair.fragment_reverse = base.sample_both_strands && rng.bernoulli(0.5);

    // Donor fragment with population variants.
    std::vector<genome::Base> fragment;
    fragment.reserve(insert);
    std::uint32_t variant_subs = 0;
    for (std::uint32_t k = 0; k < insert; ++k) {
      genome::Base b = reference.at(start + k);
      if (rng.bernoulli(base.population_variation_rate)) {
        b = mutate(rng, b);
        ++variant_subs;
      }
      fragment.push_back(b);
    }
    if (pair.fragment_reverse) {
      fragment = genome::reverse_complement(fragment);
    }

    // FR protocol: mate 1 reads the fragment 5'->3'; mate 2 reads the other
    // end on the opposite strand.
    const std::vector<genome::Base> tpl1(fragment.begin(),
                                         fragment.begin() + base.read_length);
    std::vector<genome::Base> tpl2(fragment.end() - base.read_length,
                                   fragment.end());
    tpl2 = genome::reverse_complement(tpl2);

    pair.read1 = sequence_mate(tpl1, base, rng);
    pair.read2 = sequence_mate(tpl2, base, rng);
    pair.read1.substitutions += variant_subs;  // attribute donor variants

    // Ground truth in forward-genome coordinates.
    if (!pair.fragment_reverse) {
      pair.read1.origin = start;
      pair.read1.reverse_strand = false;
      pair.read2.origin = start + insert - base.read_length;
      pair.read2.reverse_strand = true;
    } else {
      pair.read1.origin = start + insert - base.read_length;
      pair.read1.reverse_strand = true;
      pair.read2.origin = start;
      pair.read2.reverse_strand = false;
    }
    set.pairs.push_back(std::move(pair));
  }
  return set;
}

}  // namespace pim::readsim
