// ART-like short-read simulator (substitution for the ART tool [19]).
//
// The paper's workload: 10 million 100-bp reads with population variation
// 0.1% and genome (sequencing) error rate 0.2%. We reproduce that generation
// process:
//   1. sample a start position uniformly over the reference,
//   2. take the 'donor' haplotype: the reference with per-base population
//      variants applied (SNVs at `population_variation_rate`, occasional
//      1-bp indels when enabled),
//   3. optionally reverse-complement (strand chosen uniformly),
//   4. apply sequencing errors (substitutions at `sequencing_error_rate`,
//      small indel errors at `indel_error_rate`).
// Ground truth (origin position, strand, edit counts) travels with each read
// so benches can score alignment accuracy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/genome/alphabet.h"
#include "src/genome/fastq.h"
#include "src/genome/packed_sequence.h"

namespace pim::readsim {

struct ReadSimSpec {
  std::uint32_t read_length = 100;
  std::uint64_t num_reads = 1000;
  double population_variation_rate = 0.001;  ///< 0.1% as in the paper.
  double sequencing_error_rate = 0.002;      ///< 0.2% as in the paper.
  /// 1-bp insertion/deletion error rate (per base). ART's default Illumina
  /// indel rates are ~1e-4; 0 disables indels (substitution-only workloads).
  double indel_error_rate = 0.0;
  bool sample_both_strands = true;
  /// Position-dependent error profile (Illumina-like 3' degradation):
  /// the per-base sequencing error rate ramps linearly from
  /// rate*(1 - ramp/2) at the 5' end to rate*(1 + ramp/2) at the 3' end,
  /// keeping the mean at `sequencing_error_rate`. 0 = uniform.
  double error_ramp = 0.0;
  /// Emit Phred+33 quality strings reflecting the per-base error model.
  bool emit_qualities = false;
  std::uint64_t seed = 42;
};

struct SimulatedRead {
  std::vector<genome::Base> bases;
  /// Phred+33 qualities (empty unless spec.emit_qualities).
  std::string qualities;
  std::uint64_t origin = 0;      ///< True start position in the reference.
  bool reverse_strand = false;
  std::uint32_t substitutions = 0;  ///< Variant + error substitutions.
  std::uint32_t insertions = 0;
  std::uint32_t deletions = 0;
  std::uint32_t total_diffs() const {
    return substitutions + insertions + deletions;
  }
  bool is_exact() const { return total_diffs() == 0; }
};

struct ReadSet {
  std::vector<SimulatedRead> reads;
  /// Fraction of reads with no differences at all — for typical rates this
  /// approximates the paper's "~70% of short reads should be exactly
  /// aligned" observation.
  double exact_fraction() const;
};

class ReadSimulator {
 public:
  explicit ReadSimulator(const ReadSimSpec& spec) : spec_(spec) {}

  /// Generate the configured number of reads from `reference`.
  /// Throws std::invalid_argument when the reference is shorter than a read.
  ReadSet generate(const genome::PackedSequence& reference) const;

  const ReadSimSpec& spec() const { return spec_; }

 private:
  ReadSimSpec spec_;
};

/// Convert simulated reads to FASTQ records named "<prefix><index>" with
/// origin/strand ground truth appended to the name (ART-style). Reads
/// without qualities get a flat Phred-30 string.
std::vector<genome::FastqRecord> to_fastq(const ReadSet& set,
                                          const std::string& prefix = "read");

}  // namespace pim::readsim
