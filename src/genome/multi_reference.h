// Multi-chromosome references.
//
// The human reference is 24 chromosomes; a single FM-index over their
// concatenation is how production aligners (and the paper's 3.2 Gbp "the
// reference genome") handle it. This class owns the concatenation and the
// coordinate map, translating global hit positions back to
// (chromosome, offset) and flagging hits that straddle a junction (which
// are artefacts of concatenation, not real alignments).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/genome/fasta.h"
#include "src/genome/packed_sequence.h"

namespace pim::genome {

struct Chromosome {
  std::string name;
  std::uint64_t offset = 0;  ///< Start in the concatenation.
  std::uint64_t length = 0;
};

struct ChromosomeLocation {
  std::size_t chromosome = 0;  ///< Index into chromosomes().
  std::uint64_t offset = 0;    ///< 0-based position within it.
  bool operator==(const ChromosomeLocation&) const = default;
};

class MultiReference {
 public:
  MultiReference() = default;

  static MultiReference from_parts(
      std::vector<std::pair<std::string, PackedSequence>> parts);
  static MultiReference from_fasta_records(
      const std::vector<FastaRecord>& records);

  /// Reassemble from an already-concatenated sequence and its coordinate
  /// table (the shape a v2 index artifact stores) without re-packing bases.
  /// The chromosome table must tile `concatenated` exactly: offsets
  /// contiguous from 0, lengths summing to its size. Throws
  /// std::invalid_argument otherwise.
  static MultiReference from_concatenated(PackedSequence concatenated,
                                          std::vector<Chromosome> chromosomes);

  const PackedSequence& concatenated() const { return concatenated_; }
  const std::vector<Chromosome>& chromosomes() const { return chromosomes_; }
  std::uint64_t total_length() const { return concatenated_.size(); }

  /// Map a global position to its chromosome; nullopt past the end.
  std::optional<ChromosomeLocation> locate(std::uint64_t global) const;

  /// Does [global, global+length) cross a chromosome junction? Such hits
  /// are concatenation artefacts and must be filtered.
  bool spans_boundary(std::uint64_t global, std::uint64_t length) const;

  /// Chromosome lookup by name; nullopt if absent.
  std::optional<std::size_t> chromosome_index(const std::string& name) const;

  /// Global coordinate of (chromosome, offset). Throws std::out_of_range
  /// for a bad chromosome index or an offset past its end.
  std::uint64_t to_global(const ChromosomeLocation& loc) const;

 private:
  PackedSequence concatenated_;
  std::vector<Chromosome> chromosomes_;
};

}  // namespace pim::genome
