// Synthetic reference genomes.
//
// Substitution for Hg19 (see DESIGN.md §2): the paper aligns 10M reads to the
// 3.2 Gbp human reference; we generate references whose *local* statistics
// exercise the same code paths — uniform base composition plus planted
// repeats and tandem duplications (repeats are what make real genomes hard:
// they widen SA intervals and force backtracking to consider more hits).
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/genome/packed_sequence.h"

namespace pim::genome {

struct SyntheticGenomeSpec {
  std::size_t length = 1 << 20;    ///< Total bases.
  double gc_content = 0.41;        ///< Human-like GC fraction.
  /// Fraction of the genome covered by copies of planted repeat elements
  /// (human: ~50% repetitive). Copies receive point mutations at
  /// `repeat_divergence` so they are near- but not exact duplicates.
  double repeat_fraction = 0.3;
  std::size_t repeat_unit_length = 300;
  double repeat_divergence = 0.02;
  std::uint64_t seed = 1;
};

/// Generate a reference according to the spec. Deterministic in the seed.
PackedSequence generate_reference(const SyntheticGenomeSpec& spec);

/// Uniform-random ACGT sequence (no repeat structure); the fastest generator,
/// used by unit tests and micro-benchmarks.
PackedSequence generate_uniform(std::size_t length, std::uint64_t seed,
                                double gc_content = 0.5);

}  // namespace pim::genome
