#include "src/genome/packed_sequence.h"

#include <stdexcept>

namespace pim::genome {

namespace {
constexpr std::size_t words_for(std::size_t bases) { return (bases + 31) / 32; }
}  // namespace

PackedSequence::PackedSequence(const std::vector<Base>& bases) {
  words_.vec().reserve(words_for(bases.size()));
  for (const auto b : bases) push_back(b);
}

PackedSequence::PackedSequence(std::string_view ascii)
    : PackedSequence(encode(ascii)) {}

PackedSequence PackedSequence::borrowed(const std::uint64_t* words,
                                        std::size_t num_bases) {
  return from_words(
      util::Storage<std::uint64_t>::borrowed(words, words_for(num_bases)),
      num_bases);
}

PackedSequence PackedSequence::from_words(util::Storage<std::uint64_t> words,
                                          std::size_t num_bases) {
  if (words.size() != words_for(num_bases)) {
    throw std::invalid_argument(
        "PackedSequence::from_words: word count mismatch");
  }
  if (num_bases % 32 != 0 && !words.empty()) {
    const std::uint64_t tail = words[words.size() - 1];
    if ((tail & ~((1ULL << ((num_bases & 31) * 2)) - 1)) != 0) {
      throw std::invalid_argument(
          "PackedSequence::from_words: nonzero bits past the end");
    }
  }
  PackedSequence seq;
  seq.size_ = num_bases;
  seq.words_ = std::move(words);
  return seq;
}

void PackedSequence::push_back(Base b) {
  auto& words = words_.vec();
  if (size_ % 32 == 0) words.push_back(0);
  words.back() |= static_cast<std::uint64_t>(b) << ((size_ & 31) * 2);
  ++size_;
}

void PackedSequence::set(std::size_t i, Base b) {
  if (i >= size_) throw std::out_of_range("PackedSequence::set");
  const std::size_t shift = (i & 31) * 2;
  auto& words = words_.vec();
  words[i >> 5] &= ~(std::uint64_t{0b11} << shift);
  words[i >> 5] |= static_cast<std::uint64_t>(b) << shift;
}

std::vector<Base> PackedSequence::slice(std::size_t begin, std::size_t end) const {
  if (begin > end || end > size_) {
    throw std::out_of_range("PackedSequence::slice");
  }
  std::vector<Base> out;
  out.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) out.push_back(at(i));
  return out;
}

std::string PackedSequence::to_string() const { return decode(unpack()); }

bool PackedSequence::operator==(const PackedSequence& other) const {
  return size_ == other.size_ && words_ == other.words_;
}

}  // namespace pim::genome
