#include "src/genome/packed_sequence.h"

#include <stdexcept>

namespace pim::genome {

PackedSequence::PackedSequence(const std::vector<Base>& bases) {
  words_.reserve((bases.size() + 31) / 32);
  for (const auto b : bases) push_back(b);
}

PackedSequence::PackedSequence(std::string_view ascii)
    : PackedSequence(encode(ascii)) {}

void PackedSequence::push_back(Base b) {
  if (size_ % 32 == 0) words_.push_back(0);
  words_.back() |= static_cast<std::uint64_t>(b) << ((size_ & 31) * 2);
  ++size_;
}

void PackedSequence::set(std::size_t i, Base b) {
  if (i >= size_) throw std::out_of_range("PackedSequence::set");
  const std::size_t shift = (i & 31) * 2;
  words_[i >> 5] &= ~(std::uint64_t{0b11} << shift);
  words_[i >> 5] |= static_cast<std::uint64_t>(b) << shift;
}

std::vector<Base> PackedSequence::slice(std::size_t begin, std::size_t end) const {
  if (begin > end || end > size_) {
    throw std::out_of_range("PackedSequence::slice");
  }
  std::vector<Base> out;
  out.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) out.push_back(at(i));
  return out;
}

std::string PackedSequence::to_string() const { return decode(unpack()); }

bool PackedSequence::operator==(const PackedSequence& other) const {
  return size_ == other.size_ && words_ == other.words_;
}

}  // namespace pim::genome
