#include "src/genome/fasta.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace pim::genome {

std::vector<FastaRecord> read_fasta(std::istream& in, NonAcgtPolicy policy) {
  std::vector<FastaRecord> records;
  std::string line;
  bool have_record = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line.front() == '>') {
      records.push_back(FastaRecord{line.substr(1), PackedSequence{}, 0});
      have_record = true;
      continue;
    }
    if (!have_record) {
      throw std::runtime_error("FASTA: sequence data before first header");
    }
    auto& rec = records.back();
    for (const char c : line) {
      if (c == ' ' || c == '\t') continue;
      const auto b = base_from_char(c);
      if (b) {
        rec.sequence.push_back(*b);
        continue;
      }
      switch (policy) {
        case NonAcgtPolicy::kSkip:
          ++rec.dropped;
          break;
        case NonAcgtPolicy::kReplaceA:
          rec.sequence.push_back(Base::A);
          ++rec.dropped;
          break;
        case NonAcgtPolicy::kThrow:
          throw std::runtime_error(std::string("FASTA: non-ACGT character '") +
                                   c + "' in record " + rec.name);
      }
    }
  }
  return records;
}

std::vector<FastaRecord> read_fasta_file(const std::string& path,
                                         NonAcgtPolicy policy) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("FASTA: cannot open " + path);
  return read_fasta(in, policy);
}

void write_fasta(std::ostream& out, const std::vector<FastaRecord>& records,
                 std::size_t line_width) {
  for (const auto& rec : records) {
    out << '>' << rec.name << '\n';
    const std::string seq = rec.sequence.to_string();
    if (line_width == 0) {
      out << seq << '\n';
      continue;
    }
    for (std::size_t i = 0; i < seq.size(); i += line_width) {
      out << seq.substr(i, line_width) << '\n';
    }
  }
}

void write_fasta_file(const std::string& path,
                      const std::vector<FastaRecord>& records,
                      std::size_t line_width) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("FASTA: cannot open for write " + path);
  write_fasta(out, records, line_width);
}

}  // namespace pim::genome
