#include "src/genome/fastq.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace pim::genome {

char phred_to_char(int score) {
  return static_cast<char>(33 + std::clamp(score, 0, 93));
}

int char_to_phred(char c) {
  const int score = static_cast<int>(static_cast<unsigned char>(c)) - 33;
  if (score < 0 || score > 93) {
    throw std::invalid_argument("char_to_phred: not a Phred+33 character");
  }
  return score;
}

double phred_to_error_probability(int score) {
  return std::pow(10.0, -static_cast<double>(score) / 10.0);
}

int error_probability_to_phred(double probability) {
  if (probability <= 0.0) return 93;
  const double q = -10.0 * std::log10(probability);
  return std::clamp(static_cast<int>(std::lround(q)), 0, 93);
}

bool FastqStreamReader::next(FastqRecord& record) {
  std::string header, bases, plus, quals;
  auto strip_cr = [](std::string& s) {
    if (!s.empty() && s.back() == '\r') s.pop_back();
  };
  // Parse errors carry the 1-based record index: a streaming run over a
  // 10M-read file needs to say *where* the file went bad, not just that it
  // did.
  const std::string at = " (record " + std::to_string(count_ + 1) + ")";
  // Skip blank lines between records.
  do {
    if (!std::getline(*in_, header)) return false;
    strip_cr(header);
  } while (header.empty());
  if (header.front() != '@') {
    throw std::runtime_error("FASTQ: expected '@' header, got: " + header +
                             at);
  }
  if (!std::getline(*in_, bases)) {
    throw std::runtime_error("FASTQ: truncated record (no sequence)" + at);
  }
  strip_cr(bases);
  if (!std::getline(*in_, plus) || plus.empty() || plus.front() != '+') {
    throw std::runtime_error("FASTQ: missing '+' separator" + at);
  }
  if (!std::getline(*in_, quals)) {
    throw std::runtime_error("FASTQ: truncated record (no qualities)" + at);
  }
  strip_cr(quals);
  if (quals.size() != bases.size()) {
    throw std::runtime_error("FASTQ: quality length mismatch in record " +
                             header + at);
  }
  record.name = header.substr(1);
  record.qualities = quals;
  record.sequence = PackedSequence{};
  for (std::size_t i = 0; i < bases.size(); ++i) {
    const auto b = base_from_char(bases[i]);
    if (b) {
      record.sequence.push_back(*b);
    } else {
      record.sequence.push_back(Base::A);      // N call: arbitrary base...
      record.qualities[i] = phred_to_char(0);  // ...flagged untrustworthy
    }
    (void)char_to_phred(record.qualities[i]);  // validate the quality range
  }
  ++count_;
  return true;
}

std::vector<FastqRecord> read_fastq(std::istream& in) {
  std::vector<FastqRecord> records;
  FastqStreamReader reader(in);
  FastqRecord record;
  while (reader.next(record)) {
    records.push_back(std::move(record));
  }
  return records;
}

std::vector<FastqRecord> read_fastq_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("FASTQ: cannot open " + path);
  return read_fastq(in);
}

void write_fastq(std::ostream& out, const std::vector<FastqRecord>& records) {
  for (const auto& rec : records) {
    if (rec.qualities.size() != rec.sequence.size()) {
      throw std::invalid_argument(
          "FASTQ: quality length mismatch writing record " + rec.name);
    }
    out << '@' << rec.name << '\n'
        << rec.sequence.to_string() << '\n'
        << "+\n"
        << rec.qualities << '\n';
  }
}

void write_fastq_file(const std::string& path,
                      const std::vector<FastqRecord>& records) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("FASTQ: cannot open for write " + path);
  write_fastq(out, records);
}

}  // namespace pim::genome
