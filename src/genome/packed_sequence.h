// 2-bit-packed DNA sequence.
//
// The human reference (3.2 Gbp) only fits in memory at 2 bits/base; the
// paper's sub-array layout likewise stores 128 bps per 256-bit word-line
// (Fig. 6a). PackedSequence is the canonical in-memory representation used
// by the index builders and the PIM mapping layer.
//
// Backed by Storage<uint64_t> (S42): built sequences own their words; load
// paths may borrow a read-only word region (a section of a mapped index
// artifact) zero-copy. Mutation copies a borrowed region first.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/genome/alphabet.h"
#include "src/util/storage.h"

namespace pim::genome {

class PackedSequence {
 public:
  PackedSequence() = default;
  explicit PackedSequence(const std::vector<Base>& bases);
  explicit PackedSequence(std::string_view ascii);

  /// Borrow `num_bases` 2-bit bases over a read-only word region of
  /// (num_bases + 31) / 32 words that must outlive the sequence. Throws
  /// std::invalid_argument if the unused tail bits of the last word are not
  /// zero (owned sequences keep them zero; a nonzero tail means the region
  /// is not a serialized PackedSequence).
  static PackedSequence borrowed(const std::uint64_t* words,
                                 std::size_t num_bases);

  /// Adopt a word buffer (owned or borrowed Storage) as `num_bases` bases.
  /// Throws std::invalid_argument on a word-count mismatch or nonzero tail
  /// bits. This is the deserialization entry point: the stream loader passes
  /// owned words, the mapped loader borrowed ones.
  static PackedSequence from_words(util::Storage<std::uint64_t> words,
                                   std::size_t num_bases);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  Base at(std::size_t i) const {
    return static_cast<Base>((words_.data()[i >> 5] >> ((i & 31) * 2)) & 0b11);
  }

  void push_back(Base b);
  void set(std::size_t i, Base b);

  /// Copy of the half-open range [begin, end) as unpacked bases.
  std::vector<Base> slice(std::size_t begin, std::size_t end) const;
  std::vector<Base> unpack() const { return slice(0, size_); }
  std::string to_string() const;

  bool operator==(const PackedSequence& other) const;

  /// Raw packed words (32 bases each), for serialization.
  std::span<const std::uint64_t> words() const { return words_.span(); }
  /// True when the words are owned (heap) rather than borrowed (mapped).
  bool owns_storage() const { return words_.owned(); }

  /// Approximate resident footprint in bytes (used for the off-chip-memory
  /// accounting of Fig. 10a). Mapped storage counts the same — the pages
  /// are resident while searched.
  std::size_t memory_bytes() const { return words_.size() * sizeof(std::uint64_t); }

 private:
  std::size_t size_ = 0;
  util::Storage<std::uint64_t> words_;  // 32 bases per 64-bit word
};

}  // namespace pim::genome
