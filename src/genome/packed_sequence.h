// 2-bit-packed DNA sequence.
//
// The human reference (3.2 Gbp) only fits in memory at 2 bits/base; the
// paper's sub-array layout likewise stores 128 bps per 256-bit word-line
// (Fig. 6a). PackedSequence is the canonical in-memory representation used
// by the index builders and the PIM mapping layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/genome/alphabet.h"

namespace pim::genome {

class PackedSequence {
 public:
  PackedSequence() = default;
  explicit PackedSequence(const std::vector<Base>& bases);
  explicit PackedSequence(std::string_view ascii);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  Base at(std::size_t i) const {
    return static_cast<Base>((words_[i >> 5] >> ((i & 31) * 2)) & 0b11);
  }

  void push_back(Base b);
  void set(std::size_t i, Base b);

  /// Copy of the half-open range [begin, end) as unpacked bases.
  std::vector<Base> slice(std::size_t begin, std::size_t end) const;
  std::vector<Base> unpack() const { return slice(0, size_); }
  std::string to_string() const;

  bool operator==(const PackedSequence& other) const;

  /// Approximate heap footprint in bytes (used for the off-chip-memory
  /// accounting of Fig. 10a).
  std::size_t memory_bytes() const { return words_.size() * sizeof(std::uint64_t); }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;  // 32 bases per 64-bit word
};

}  // namespace pim::genome
