#include "src/genome/multi_reference.h"

#include <algorithm>
#include <stdexcept>

namespace pim::genome {

MultiReference MultiReference::from_parts(
    std::vector<std::pair<std::string, PackedSequence>> parts) {
  MultiReference ref;
  for (auto& [name, seq] : parts) {
    Chromosome chrom;
    chrom.name = std::move(name);
    chrom.offset = ref.concatenated_.size();
    chrom.length = seq.size();
    for (std::size_t i = 0; i < seq.size(); ++i) {
      ref.concatenated_.push_back(seq.at(i));
    }
    ref.chromosomes_.push_back(std::move(chrom));
  }
  return ref;
}

MultiReference MultiReference::from_concatenated(
    PackedSequence concatenated, std::vector<Chromosome> chromosomes) {
  std::uint64_t expected_offset = 0;
  for (const auto& chrom : chromosomes) {
    if (chrom.offset != expected_offset) {
      throw std::invalid_argument(
          "MultiReference::from_concatenated: chromosome offsets not "
          "contiguous");
    }
    expected_offset += chrom.length;
  }
  if (expected_offset != concatenated.size()) {
    throw std::invalid_argument(
        "MultiReference::from_concatenated: chromosome lengths do not tile "
        "the concatenation");
  }
  MultiReference ref;
  ref.concatenated_ = std::move(concatenated);
  ref.chromosomes_ = std::move(chromosomes);
  return ref;
}

MultiReference MultiReference::from_fasta_records(
    const std::vector<FastaRecord>& records) {
  std::vector<std::pair<std::string, PackedSequence>> parts;
  parts.reserve(records.size());
  for (const auto& rec : records) {
    // SAM reference names stop at the first whitespace.
    const auto cut = rec.name.find_first_of(" \t");
    parts.emplace_back(rec.name.substr(0, cut), rec.sequence);
  }
  return from_parts(std::move(parts));
}

std::optional<ChromosomeLocation> MultiReference::locate(
    std::uint64_t global) const {
  if (global >= concatenated_.size() || chromosomes_.empty()) {
    return std::nullopt;
  }
  // Binary search the last chromosome with offset <= global.
  const auto it = std::upper_bound(
      chromosomes_.begin(), chromosomes_.end(), global,
      [](std::uint64_t pos, const Chromosome& c) { return pos < c.offset; });
  const auto idx = static_cast<std::size_t>(it - chromosomes_.begin()) - 1;
  return ChromosomeLocation{idx, global - chromosomes_[idx].offset};
}

bool MultiReference::spans_boundary(std::uint64_t global,
                                    std::uint64_t length) const {
  if (length == 0) return false;
  const auto begin = locate(global);
  const auto end = locate(global + length - 1);
  if (!begin || !end) return true;  // runs past the concatenation
  return begin->chromosome != end->chromosome;
}

std::optional<std::size_t> MultiReference::chromosome_index(
    const std::string& name) const {
  for (std::size_t i = 0; i < chromosomes_.size(); ++i) {
    if (chromosomes_[i].name == name) return i;
  }
  return std::nullopt;
}

std::uint64_t MultiReference::to_global(const ChromosomeLocation& loc) const {
  if (loc.chromosome >= chromosomes_.size()) {
    throw std::out_of_range("MultiReference::to_global: bad chromosome");
  }
  const auto& chrom = chromosomes_[loc.chromosome];
  if (loc.offset >= chrom.length) {
    throw std::out_of_range("MultiReference::to_global: offset past end");
  }
  return chrom.offset + loc.offset;
}

}  // namespace pim::genome
