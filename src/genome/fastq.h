// Minimal FASTQ reader/writer with Phred+33 quality handling — the format
// real sequencing reads (and the ART simulator the paper uses) arrive in.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/genome/alphabet.h"
#include "src/genome/packed_sequence.h"

namespace pim::genome {

struct FastqRecord {
  std::string name;         ///< Header text after '@'.
  PackedSequence sequence;
  std::string qualities;    ///< Phred+33, same length as sequence.
};

/// Phred score <-> ASCII (offset 33). Scores clamp to [0, 93].
char phred_to_char(int score);
int char_to_phred(char c);
/// Error probability of a Phred score: 10^(-q/10).
double phred_to_error_probability(int score);
/// Nearest Phred score for an error probability (clamped to [0, 93]).
int error_probability_to_phred(double probability);

/// Parse all records. Non-ACGT sequence characters are replaced with 'A'
/// and their quality forced to 0 ('!') — the standard aligner treatment of
/// N calls. Throws std::runtime_error on structural errors (missing '+',
/// quality length mismatch, truncated record).
std::vector<FastqRecord> read_fastq(std::istream& in);
std::vector<FastqRecord> read_fastq_file(const std::string& path);

void write_fastq(std::ostream& out, const std::vector<FastqRecord>& records);
void write_fastq_file(const std::string& path,
                      const std::vector<FastqRecord>& records);

/// Streaming reader: one record at a time, O(read) memory — the shape a
/// 10M-read production run needs (read_fastq would hold them all).
/// Same validation and non-ACGT policy as read_fastq.
class FastqStreamReader {
 public:
  /// The stream must outlive the reader.
  explicit FastqStreamReader(std::istream& in) : in_(&in) {}

  /// Fetch the next record; false at end of stream. Throws
  /// std::runtime_error on malformed input.
  bool next(FastqRecord& record);

  std::size_t records_read() const { return count_; }

 private:
  std::istream* in_;
  std::size_t count_ = 0;
};

}  // namespace pim::genome
