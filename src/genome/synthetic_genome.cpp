#include "src/genome/synthetic_genome.h"

#include <stdexcept>
#include <vector>

#include "src/util/rng.h"

namespace pim::genome {

namespace {

Base draw_base(pim::util::Xoshiro256& rng, double gc_content) {
  // P(G)=P(C)=gc/2, P(A)=P(T)=(1-gc)/2.
  const double u = rng.uniform();
  if (u < gc_content / 2) return Base::G;
  if (u < gc_content) return Base::C;
  if (u < gc_content + (1.0 - gc_content) / 2) return Base::A;
  return Base::T;
}

Base random_other_base(pim::util::Xoshiro256& rng, Base b) {
  // Pick uniformly among the three bases != b.
  const auto offset = static_cast<std::uint8_t>(rng.bounded(3)) + 1;
  return static_cast<Base>((static_cast<std::uint8_t>(b) + offset) % 4);
}

}  // namespace

PackedSequence generate_uniform(std::size_t length, std::uint64_t seed,
                                double gc_content) {
  if (gc_content < 0.0 || gc_content > 1.0) {
    throw std::invalid_argument("gc_content out of [0,1]");
  }
  pim::util::Xoshiro256 rng(seed);
  PackedSequence seq;
  for (std::size_t i = 0; i < length; ++i) {
    seq.push_back(draw_base(rng, gc_content));
  }
  return seq;
}

PackedSequence generate_reference(const SyntheticGenomeSpec& spec) {
  if (spec.repeat_fraction < 0.0 || spec.repeat_fraction >= 1.0) {
    throw std::invalid_argument("repeat_fraction out of [0,1)");
  }
  pim::util::Xoshiro256 rng(spec.seed);

  // A small family of repeat elements; genomes reuse few element families
  // many times (LINE/SINE-like behaviour).
  constexpr std::size_t kRepeatFamilies = 8;
  std::vector<std::vector<Base>> families;
  if (spec.repeat_fraction > 0.0 && spec.repeat_unit_length > 0) {
    families.reserve(kRepeatFamilies);
    for (std::size_t f = 0; f < kRepeatFamilies; ++f) {
      std::vector<Base> unit;
      unit.reserve(spec.repeat_unit_length);
      for (std::size_t i = 0; i < spec.repeat_unit_length; ++i) {
        unit.push_back(draw_base(rng, spec.gc_content));
      }
      families.push_back(std::move(unit));
    }
  }

  PackedSequence seq;
  while (seq.size() < spec.length) {
    const bool plant_repeat =
        !families.empty() && rng.uniform() < spec.repeat_fraction;
    if (plant_repeat) {
      const auto& unit = families[rng.bounded(families.size())];
      for (const auto b : unit) {
        if (seq.size() >= spec.length) break;
        // Diverged copy: point-mutate at the configured rate.
        seq.push_back(rng.bernoulli(spec.repeat_divergence)
                          ? random_other_base(rng, b)
                          : b);
      }
    } else {
      // Unique stretch roughly the same length as a repeat unit.
      const std::size_t run =
          spec.repeat_unit_length > 0 ? spec.repeat_unit_length : 256;
      for (std::size_t i = 0; i < run && seq.size() < spec.length; ++i) {
        seq.push_back(draw_base(rng, spec.gc_content));
      }
    }
  }
  return seq;
}

}  // namespace pim::genome
