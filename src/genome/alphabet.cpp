#include "src/genome/alphabet.h"

#include <stdexcept>

namespace pim::genome {

std::uint8_t hardware_code(Base b) {
  switch (b) {
    case Base::T: return 0b00;
    case Base::G: return 0b01;
    case Base::A: return 0b10;
    case Base::C: return 0b11;
  }
  throw std::invalid_argument("hardware_code: bad base");
}

Base base_from_hardware_code(std::uint8_t code) {
  switch (code & 0b11) {
    case 0b00: return Base::T;
    case 0b01: return Base::G;
    case 0b10: return Base::A;
    default: return Base::C;
  }
}

char to_char(Base b) {
  switch (b) {
    case Base::A: return 'A';
    case Base::C: return 'C';
    case Base::G: return 'G';
    case Base::T: return 'T';
  }
  throw std::invalid_argument("to_char: bad base");
}

std::optional<Base> base_from_char(char c) {
  switch (c) {
    case 'A': case 'a': return Base::A;
    case 'C': case 'c': return Base::C;
    case 'G': case 'g': return Base::G;
    case 'T': case 't': return Base::T;
    default: return std::nullopt;
  }
}

Base complement(Base b) {
  switch (b) {
    case Base::A: return Base::T;
    case Base::T: return Base::A;
    case Base::C: return Base::G;
    case Base::G: return Base::C;
  }
  throw std::invalid_argument("complement: bad base");
}

std::vector<Base> encode(std::string_view text) {
  std::vector<Base> out;
  out.reserve(text.size());
  for (const char c : text) {
    const auto b = base_from_char(c);
    if (!b) {
      throw std::invalid_argument(std::string("encode: non-ACGT character '") +
                                  c + "'");
    }
    out.push_back(*b);
  }
  return out;
}

std::string decode(const std::vector<Base>& bases) {
  std::string out;
  out.reserve(bases.size());
  for (const auto b : bases) out.push_back(to_char(b));
  return out;
}

std::vector<Base> reverse_complement(const std::vector<Base>& bases) {
  std::vector<Base> out;
  reverse_complement_into(bases, out);
  return out;
}

void reverse_complement_into(const std::vector<Base>& bases,
                             std::vector<Base>& out) {
  out.clear();
  out.reserve(bases.size());
  for (auto it = bases.rbegin(); it != bases.rend(); ++it) {
    out.push_back(complement(*it));
  }
}

}  // namespace pim::genome
