// Minimal FASTA reader/writer so examples can ingest real reference files and
// emit simulated reads. Non-ACGT symbols (N runs, IUPAC ambiguity codes) are
// handled by the policy the aligners actually need: either skipped or
// replaced, recorded per record.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/genome/alphabet.h"
#include "src/genome/packed_sequence.h"

namespace pim::genome {

struct FastaRecord {
  std::string name;          ///< Header text after '>'.
  PackedSequence sequence;   ///< ACGT payload (after the non-ACGT policy).
  std::size_t dropped = 0;   ///< Non-ACGT characters removed/replaced.
};

enum class NonAcgtPolicy {
  kSkip,       ///< Drop the character (shifts coordinates; fine for synthetic work).
  kReplaceA,   ///< Replace with 'A' (keeps coordinates; what many aligners do to N).
  kThrow,      ///< Reject the file.
};

/// Parse all records from a FASTA stream. Throws std::runtime_error on
/// malformed input (sequence data before any header, or kThrow policy hit).
std::vector<FastaRecord> read_fasta(std::istream& in,
                                    NonAcgtPolicy policy = NonAcgtPolicy::kReplaceA);
std::vector<FastaRecord> read_fasta_file(const std::string& path,
                                         NonAcgtPolicy policy = NonAcgtPolicy::kReplaceA);

/// Write records with the given line width (0 = single line).
void write_fasta(std::ostream& out, const std::vector<FastaRecord>& records,
                 std::size_t line_width = 70);
void write_fasta_file(const std::string& path,
                      const std::vector<FastaRecord>& records,
                      std::size_t line_width = 70);

}  // namespace pim::genome
