// DNA alphabet with the paper's 2-bit encoding (Fig. 6a):
//   T -> 00, G -> 01, A -> 10, C -> 11
// plus the sentinel '$' used by BWT construction (never stored in the packed
// 2-bit representation; it lives at a known index of the BWT).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pim::genome {

/// Nucleotide codes in *lexicographic* order A < C < G < T, which is the
/// order BWT/FM-index computations (Count table, backward search) require.
enum class Base : std::uint8_t { A = 0, C = 1, G = 2, T = 3 };

inline constexpr std::size_t kNumBases = 4;

/// All four bases in lexicographic order, for iteration.
inline constexpr std::array<Base, kNumBases> kAllBases = {
    Base::A, Base::C, Base::G, Base::T};

/// The paper's hardware 2-bit cell encoding (Fig. 6a): T=00, G=01, A=10, C=11.
/// This is distinct from the lexicographic code above; the mapping layer of
/// the PIM platform converts between them when loading BWT slices into
/// sub-arrays. Exposed so tests can verify the CRef match vectors.
std::uint8_t hardware_code(Base b);
Base base_from_hardware_code(std::uint8_t code);

/// ASCII <-> Base conversions. `base_from_char` accepts upper/lower case and
/// returns nullopt for non-ACGT characters (N, gaps, ...).
char to_char(Base b);
std::optional<Base> base_from_char(char c);

/// Watson–Crick complement (A<->T, C<->G), per the complementary base
/// pairing rule the paper's Introduction cites.
Base complement(Base b);

/// Encode an ASCII string; throws std::invalid_argument on non-ACGT input.
std::vector<Base> encode(std::string_view text);
/// Decode to ASCII.
std::string decode(const std::vector<Base>& bases);

/// Reverse complement of a base sequence (reads may originate from either
/// strand of the reference).
std::vector<Base> reverse_complement(const std::vector<Base>& bases);

/// Reverse complement into `out`, reusing its capacity (clear + append).
/// The batch-engine hot path calls this once per read with a scratch buffer
/// so the per-read allocation of the value-returning overload disappears.
/// `out` must not alias `bases`.
void reverse_complement_into(const std::vector<Base>& bases,
                             std::vector<Base>& out);

}  // namespace pim::genome
