#include "src/varcall/snv_caller.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace pim::varcall {

std::vector<SnvCall> call_snvs(const Pileup& pileup,
                               const genome::PackedSequence& reference,
                               const SnvCallerOptions& options) {
  if (pileup.reference_length() != reference.size()) {
    throw std::invalid_argument("call_snvs: pileup/reference length mismatch");
  }
  std::vector<SnvCall> calls;
  for (std::uint64_t pos = 0; pos < reference.size(); ++pos) {
    const std::uint32_t depth = pileup.depth(pos);
    if (depth < options.min_depth) continue;
    const genome::Base ref_base = reference.at(pos);

    // Strongest non-reference allele.
    genome::Base alt = ref_base;
    std::uint32_t alt_count = 0;
    for (const auto b : genome::kAllBases) {
      if (b == ref_base) continue;
      const std::uint32_t c = pileup.count(pos, b);
      if (c > alt_count) {
        alt_count = c;
        alt = b;
      }
    }
    if (alt_count < options.min_alt_count) continue;
    const double fraction = static_cast<double>(alt_count) / depth;
    if (fraction < options.min_alt_fraction) continue;
    calls.push_back(SnvCall{pos, ref_base, alt, depth, alt_count, fraction});
  }
  return calls;
}

SnvAccuracy score_calls(
    const std::vector<SnvCall>& calls,
    const std::vector<std::pair<std::uint64_t, genome::Base>>& truth) {
  std::map<std::uint64_t, genome::Base> truth_map(truth.begin(), truth.end());
  SnvAccuracy accuracy;
  std::size_t matched = 0;
  for (const auto& call : calls) {
    const auto it = truth_map.find(call.position);
    if (it != truth_map.end() && it->second == call.alt_base) {
      ++accuracy.true_positives;
      ++matched;
      truth_map.erase(it);  // count each truth site once
    } else {
      ++accuracy.false_positives;
    }
  }
  accuracy.false_negatives = truth.size() - matched;
  return accuracy;
}

}  // namespace pim::varcall
