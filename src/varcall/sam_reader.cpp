#include "src/varcall/sam_reader.h"

#include <istream>
#include <sstream>
#include <stdexcept>

#include "src/align/sam_writer.h"

namespace pim::varcall {

std::vector<align::CigarEntry> parse_cigar(const std::string& cigar) {
  std::vector<align::CigarEntry> out;
  if (cigar == "*" || cigar.empty()) return out;
  std::uint32_t run = 0;
  bool have_digits = false;
  for (const char c : cigar) {
    if (c >= '0' && c <= '9') {
      run = run * 10 + static_cast<std::uint32_t>(c - '0');
      have_digits = true;
      continue;
    }
    if (!have_digits || run == 0) {
      throw std::runtime_error("SAM: malformed CIGAR: " + cigar);
    }
    switch (c) {
      case 'M':
      case 'X':
      case '=':
        out.push_back({align::CigarOp::kMatch, run});
        break;
      case 'I':
      case 'S':  // soft clip: consumes read bases, no reference — same
                 // pileup behaviour as an insertion
        out.push_back({align::CigarOp::kInsertion, run});
        break;
      case 'D':
      case 'N':  // reference skip
        out.push_back({align::CigarOp::kDeletion, run});
        break;
      case 'H':
      case 'P':
        break;  // consume neither
      default:
        throw std::runtime_error(std::string("SAM: unknown CIGAR op '") + c +
                                 "' in " + cigar);
    }
    run = 0;
    have_digits = false;
  }
  if (have_digits) {
    throw std::runtime_error("SAM: CIGAR ends mid-run: " + cigar);
  }
  return out;
}

bool parse_sam_record(const std::string& line, const std::string& contig_name,
                      AlignedRead& read, SamReadStats& stats) {
  ++stats.records;
  std::istringstream fields(line);
  std::string qname, flag_s, rname, pos_s, mapq, cigar_s, rnext, pnext, tlen,
      seq;
  if (!(fields >> qname >> flag_s >> rname >> pos_s >> mapq >> cigar_s >>
        rnext >> pnext >> tlen >> seq)) {
    throw std::runtime_error("SAM: record with missing fields: " + line);
  }
  std::uint32_t flag = 0;
  std::uint64_t pos = 0;
  try {
    flag = static_cast<std::uint32_t>(std::stoul(flag_s));
    pos = std::stoull(pos_s);
  } catch (const std::exception&) {
    throw std::runtime_error("SAM: non-numeric FLAG/POS: " + line);
  }
  if (flag & align::SamRecord::kFlagUnmapped) {
    ++stats.unmapped;
    return false;
  }
  if (flag & align::SamRecord::kFlagSecondary) {
    ++stats.secondary;
    return false;
  }
  if (rname != contig_name) {
    ++stats.other_reference;
    return false;
  }
  if (pos == 0 || seq == "*") {
    throw std::runtime_error("SAM: mapped record without POS/SEQ: " + line);
  }
  read.position = pos - 1;  // SAM is 1-based
  read.cigar = parse_cigar(cigar_s);
  read.bases.clear();
  read.bases.reserve(seq.size());
  for (const char c : seq) {
    const auto b = genome::base_from_char(c);
    // N and friends contribute no evidence: encode as 'A' but the caller's
    // thresholds absorb the rare miscount (same policy as FASTQ input).
    read.bases.push_back(b.value_or(genome::Base::A));
  }
  ++stats.used;
  return true;
}

SamReadStats pileup_from_sam(std::istream& in, const std::string& contig_name,
                             Pileup& pileup) {
  SamReadStats stats;
  std::string line;
  AlignedRead read;
  while (std::getline(in, line)) {
    if (line.empty() || line.front() == '@') continue;
    if (parse_sam_record(line, contig_name, read, stats)) {
      pileup.add(read);
    }
  }
  return stats;
}

}  // namespace pim::varcall
