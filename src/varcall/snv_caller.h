// Single-nucleotide-variant calling from a pileup.
//
// A deliberately simple frequency/depth caller (the classic pre-GATK
// heuristic): a site is called when coverage is adequate, the non-reference
// allele is observed often enough in absolute and relative terms, and
// (optionally) the implied error probability under the sequencing error
// rate is negligible. It closes the loop the paper's introduction draws
// from alignment to "genetic variants detection".
#pragma once

#include <cstdint>
#include <vector>

#include "src/genome/packed_sequence.h"
#include "src/varcall/pileup.h"

namespace pim::varcall {

struct SnvCall {
  std::uint64_t position = 0;
  genome::Base ref_base = genome::Base::A;
  genome::Base alt_base = genome::Base::A;
  std::uint32_t depth = 0;
  std::uint32_t alt_count = 0;
  double alt_fraction = 0.0;
};

struct SnvCallerOptions {
  std::uint32_t min_depth = 8;
  std::uint32_t min_alt_count = 4;
  double min_alt_fraction = 0.5;  ///< Haploid donor: expect ~1.0 at real SNVs.
};

/// Scan every reference position and emit calls sorted by position.
/// `reference.size()` must equal the pileup's reference length.
std::vector<SnvCall> call_snvs(const Pileup& pileup,
                               const genome::PackedSequence& reference,
                               const SnvCallerOptions& options = {});

/// Precision/recall of calls against a truth set of (position, alt) pairs.
struct SnvAccuracy {
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;
  double precision() const {
    const auto denom = true_positives + false_positives;
    return denom ? static_cast<double>(true_positives) / denom : 0.0;
  }
  double recall() const {
    const auto denom = true_positives + false_negatives;
    return denom ? static_cast<double>(true_positives) / denom : 0.0;
  }
};

SnvAccuracy score_calls(
    const std::vector<SnvCall>& calls,
    const std::vector<std::pair<std::uint64_t, genome::Base>>& truth);

}  // namespace pim::varcall
