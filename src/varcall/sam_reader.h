// SAM input for the variant-calling pipeline: parse alignment records
// (written by this library's SamWriter or any SAM 1.6 producer) back into
// pileup-ready AlignedReads, so `align -> out.sam` and `sam -> calls.vcf`
// compose as separate tools.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/varcall/pileup.h"

namespace pim::varcall {

struct SamReadStats {
  std::uint64_t records = 0;
  std::uint64_t used = 0;        ///< Mapped primary records piled up.
  std::uint64_t unmapped = 0;
  std::uint64_t secondary = 0;
  std::uint64_t other_reference = 0;  ///< RNAME != the requested contig.
};

/// Parse one SAM body line into an AlignedRead. Returns false (without
/// touching `read`) for records that must not pile up: unmapped (0x4),
/// secondary (0x100), or mapped to a different reference. Throws
/// std::runtime_error on malformed lines (missing fields, bad CIGAR,
/// non-numeric POS/FLAG).
bool parse_sam_record(const std::string& line, const std::string& contig_name,
                      AlignedRead& read, SamReadStats& stats);

/// Stream a whole SAM file ('@' headers skipped) into a pileup restricted
/// to `contig_name`. Returns per-class record counts.
SamReadStats pileup_from_sam(std::istream& in, const std::string& contig_name,
                             Pileup& pileup);

/// Parse a CIGAR string ("42M1D7M"; X/= treated as M, S skips read bases,
/// H ignored). Throws std::runtime_error on junk.
std::vector<align::CigarEntry> parse_cigar(const std::string& cigar);

}  // namespace pim::varcall
