// Per-position base pileup over aligned reads.
//
// The paper's introduction motivates alignment by what follows it —
// "genetic variants detection" among others. This module is that next
// step's substrate: it walks each aligned read's CIGAR and accumulates
// per-reference-position base counts (M/X consume read+reference, I read
// only, D reference only), from which the SNV caller derives variants.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "src/align/smith_waterman.h"
#include "src/genome/alphabet.h"

namespace pim::varcall {

/// One aligned read in reference orientation. For substitution-only
/// alignments the CIGAR may be omitted (treated as all-M).
struct AlignedRead {
  std::uint64_t position = 0;  ///< 0-based reference start.
  std::vector<genome::Base> bases;
  std::vector<align::CigarEntry> cigar;  ///< Empty => read.size() x M.
};

class Pileup {
 public:
  explicit Pileup(std::uint64_t reference_length);

  /// Accumulate one read. Portions running past the reference end are
  /// ignored; a CIGAR that consumes more read bases than provided throws.
  void add(const AlignedRead& read);

  std::uint64_t reference_length() const { return counts_.size(); }
  std::uint64_t reads_added() const { return reads_; }

  /// Observations of `base` at reference position `pos`.
  std::uint32_t count(std::uint64_t pos, genome::Base base) const {
    return counts_[pos][static_cast<std::size_t>(base)];
  }
  /// Total coverage at `pos`.
  std::uint32_t depth(std::uint64_t pos) const;
  /// The most-observed base at `pos` (ties break toward the smaller code);
  /// meaningful only when depth > 0.
  genome::Base consensus(std::uint64_t pos) const;

  double mean_depth() const;

 private:
  std::vector<std::array<std::uint32_t, genome::kNumBases>> counts_;
  std::uint64_t reads_ = 0;
};

}  // namespace pim::varcall
