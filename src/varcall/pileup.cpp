#include "src/varcall/pileup.h"

#include <stdexcept>

namespace pim::varcall {

Pileup::Pileup(std::uint64_t reference_length)
    : counts_(reference_length, std::array<std::uint32_t, 4>{}) {}

void Pileup::add(const AlignedRead& read) {
  std::uint64_t ref = read.position;
  std::size_t idx = 0;

  const auto consume_match_run = [&](std::uint32_t length) {
    for (std::uint32_t k = 0; k < length; ++k) {
      if (idx >= read.bases.size()) {
        throw std::invalid_argument("Pileup: CIGAR consumes past read end");
      }
      if (ref < counts_.size()) {
        ++counts_[ref][static_cast<std::size_t>(read.bases[idx])];
      }
      ++ref;
      ++idx;
    }
  };

  if (read.cigar.empty()) {
    consume_match_run(static_cast<std::uint32_t>(read.bases.size()));
  } else {
    for (const auto& entry : read.cigar) {
      switch (entry.op) {
        case align::CigarOp::kMatch:
        case align::CigarOp::kMismatch:
          consume_match_run(entry.length);
          break;
        case align::CigarOp::kInsertion:
          // Read-only bases: no reference position to attribute them to.
          idx += entry.length;
          if (idx > read.bases.size()) {
            throw std::invalid_argument(
                "Pileup: CIGAR consumes past read end");
          }
          break;
        case align::CigarOp::kDeletion:
          ref += entry.length;  // reference gap: no base observed
          break;
      }
    }
  }
  ++reads_;
}

std::uint32_t Pileup::depth(std::uint64_t pos) const {
  std::uint32_t total = 0;
  for (const auto c : counts_[pos]) total += c;
  return total;
}

genome::Base Pileup::consensus(std::uint64_t pos) const {
  std::size_t best = 0;
  for (std::size_t b = 1; b < genome::kNumBases; ++b) {
    if (counts_[pos][b] > counts_[pos][best]) best = b;
  }
  return static_cast<genome::Base>(best);
}

double Pileup::mean_depth() const {
  if (counts_.empty()) return 0.0;
  double total = 0.0;
  for (std::uint64_t pos = 0; pos < counts_.size(); ++pos) {
    total += depth(pos);
  }
  return total / static_cast<double>(counts_.size());
}

}  // namespace pim::varcall
