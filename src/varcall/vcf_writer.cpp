#include "src/varcall/vcf_writer.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace pim::varcall {

void write_vcf_header(std::ostream& out, const std::string& contig_name,
                      std::uint64_t contig_length, const std::string& source) {
  out << "##fileformat=VCFv4.2\n";
  out << "##source=" << source << "\n";
  out << "##contig=<ID=" << contig_name << ",length=" << contig_length
      << ">\n";
  out << "##INFO=<ID=DP,Number=1,Type=Integer,Description=\"Total depth\">\n";
  out << "##INFO=<ID=AD,Number=1,Type=Integer,Description=\"Alt depth\">\n";
  out << "##INFO=<ID=AF,Number=1,Type=Float,Description=\"Alt fraction\">\n";
  out << "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\n";
}

void write_vcf_records(std::ostream& out, const std::string& contig_name,
                       const std::vector<SnvCall>& calls) {
  for (const auto& call : calls) {
    // Phred-style confidence from the binomial improbability of the alt
    // pile arising from 0.2%-rate errors; clamped to a sane ceiling.
    const double qual =
        std::min(99.0, static_cast<double>(call.alt_count) * 10.0 *
                           call.alt_fraction);
    out << contig_name << '\t' << (call.position + 1) << "\t.\t"
        << genome::to_char(call.ref_base) << '\t'
        << genome::to_char(call.alt_base) << '\t'
        << static_cast<int>(std::lround(qual)) << "\tPASS\t"
        << "DP=" << call.depth << ";AD=" << call.alt_count << ";AF=";
    std::ostringstream af;
    af.precision(3);
    af << call.alt_fraction;
    out << af.str() << '\n';
  }
}

std::vector<VcfTriple> parse_vcf_triples(std::istream& in) {
  std::vector<VcfTriple> out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line.front() == '#') continue;
    std::istringstream fields(line);
    std::string chrom, pos, id, ref, alt;
    if (!(fields >> chrom >> pos >> id >> ref >> alt) || ref.size() != 1 ||
        alt.size() != 1) {
      throw std::runtime_error("VCF: malformed record: " + line);
    }
    VcfTriple triple;
    triple.pos = std::stoull(pos);
    triple.ref = ref[0];
    triple.alt = alt[0];
    out.push_back(triple);
  }
  return out;
}

}  // namespace pim::varcall
