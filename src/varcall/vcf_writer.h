// Minimal VCF 4.2 output for SNV calls — the interchange format downstream
// of variant detection, completing the pipeline the paper's introduction
// sketches (alignment -> variants -> diagnostics).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/varcall/snv_caller.h"

namespace pim::varcall {

/// Write the VCF header (##fileformat, contig, INFO/FORMAT definitions).
void write_vcf_header(std::ostream& out, const std::string& contig_name,
                      std::uint64_t contig_length,
                      const std::string& source = "pim-aligner");

/// Write one record per call: 1-based POS, DP/AD/AF in INFO, a simple
/// QUAL from the alt fraction and depth.
void write_vcf_records(std::ostream& out, const std::string& contig_name,
                       const std::vector<SnvCall>& calls);

/// Parse-back helper for tests: extract (1-based pos, ref, alt) triples
/// from VCF text, skipping headers. Throws std::runtime_error on a
/// malformed record line.
struct VcfTriple {
  std::uint64_t pos = 0;  ///< 1-based, as in the file.
  char ref = 'N';
  char alt = 'N';
  bool operator==(const VcfTriple&) const = default;
};
std::vector<VcfTriple> parse_vcf_triples(std::istream& in);

}  // namespace pim::varcall
