// Dynamic batching (S41): coalesce queued requests into hardware-sized
// ReadBatches and demultiplex chunk completions back to per-request
// futures.
//
// Inference stacks keep accelerators saturated under irregular load by
// batching whatever is in the queue up to a size/age threshold; the same
// trick keeps a PimChipFleet / ShardedEngine busy here. The batcher thread
// loops:
//
//   RequestQueue::gather (fill up to max_batch_reads, linger max_linger)
//     -> deadline check at dequeue (expired requests fail fast, zero
//        engine cycles)
//     -> pack survivors into ONE ReadBatch (arena recycled across batches
//        via ReadBatchBuilder::reset, so steady state allocates nothing)
//     -> align through the S39 chunk seam (align_batch_parallel_chunked:
//        thread-safe engines fan out across the scheduler, PimEngine /
//        ShardedEngine route through their serial/virtual chunked paths)
//     -> ChunkDemux maps in-order chunks back onto request extents: each
//        request's future resolves the moment ITS last read is delivered,
//        never waiting for later strangers in the same batch.
//
// Engine errors are routed to the affected requests' futures as exceptions
// (the batch's requests), not fatal to the service: the loop keeps serving.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>

#include "src/align/engine.h"
#include "src/align/parallel_aligner.h"
#include "src/serve/request_queue.h"

namespace pim::serve {

struct BatchPolicy {
  /// Coalescing ceiling: a dispatched batch carries at most this many reads
  /// (a single larger request still dispatches alone — requests are never
  /// split across batches). Size this to what keeps the backend saturated:
  /// ~chips x pipeline depth for a fleet, ~threads x chunk for software.
  std::size_t max_batch_reads = 4096;
  /// Age ceiling: dispatch as soon as the oldest queued request has waited
  /// this long, full batch or not — the latency half of the batching
  /// trade-off.
  std::chrono::microseconds max_linger{2000};
  /// Scheduler knobs for thread-safe engines (threads, chunk size); the
  /// chunk size also feeds serial engines' align_batch_chunked. The chunk
  /// size bounds demux granularity: smaller chunks resolve early requests
  /// in a batch sooner.
  align::ParallelOptions parallel;
  /// Keep only the best hit per read (see AlignerOptions::best_hit_only).
  bool best_hit_only = false;
};

class DynamicBatcher {
 public:
  /// Starts the batcher thread. `engine`, `queue`, and `counters` must
  /// outlive the batcher; the engine is driven from the batcher thread
  /// only, so non-thread-safe backends (PimEngine, ShardedEngine) serve
  /// safely.
  DynamicBatcher(const align::AlignmentEngine& engine, RequestQueue& queue,
                 ServiceCounters* counters, ServeMetrics metrics,
                 BatchPolicy policy);
  /// Joins the thread; RequestQueue::close() must have been called (or be
  /// called concurrently) or this blocks forever.
  ~DynamicBatcher();

  DynamicBatcher(const DynamicBatcher&) = delete;
  DynamicBatcher& operator=(const DynamicBatcher&) = delete;

  /// Wait for the loop to exit (queue closed and drained). Idempotent.
  void join();

  /// Merged engine counters across every dispatched batch (exact after
  /// join; a consistent mid-run view otherwise).
  align::EngineStats engine_stats() const;

  const BatchPolicy& policy() const { return policy_; }

 private:
  void run();
  void dispatch(std::vector<PendingRequest> pending,
                align::ReadBatchBuilder& builder);

  const align::AlignmentEngine* engine_;
  RequestQueue* queue_;
  ServiceCounters* counters_;
  ServeMetrics metrics_;
  BatchPolicy policy_;

  mutable std::mutex stats_mu_;
  align::EngineStats engine_stats_;

  std::thread thread_;
  bool joined_ = false;
  std::mutex join_mu_;
};

}  // namespace pim::serve
