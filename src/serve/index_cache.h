// IndexCache (S42): bounded LRU residency of mapped index artifacts.
//
// A serving deployment rarely fits every reference it can align against in
// memory at once (a clinic's panel of assemblies, per-species backfills).
// The cache registers reference_id -> artifact path up front, then loads on
// first use via MappedIndex::open and keeps at most `max_resident` indexes
// alive, evicting least-recently-used. Because residency is shared_ptr
// based, eviction never tears an index out from under an in-flight request:
// the evicted index dies when its last user releases it, the cache merely
// drops its own pin.
//
// Observability: when a MetricsRegistry is wired, the cache publishes
//   service.index_cache.hits / misses / evictions     (counters)
//   service.index_cache.resident_bytes                (gauge)
// so capacity tuning is data-driven (a high miss rate at N resident means
// the panel working set is larger than N).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/index/mapped_index.h"
#include "src/obs/metrics.h"

namespace pim::serve {

struct IndexCacheOptions {
  /// Maximum indexes resident at once (LRU beyond that). Clamped to >= 1.
  std::size_t max_resident = 2;
  /// How artifacts are opened (checksum verification, page dropping).
  index::MappedIndexOptions mapped;
  /// Publishes the service.index_cache.* series when set.
  obs::MetricsRegistry* metrics = nullptr;
};

class IndexCache {
 public:
  explicit IndexCache(IndexCacheOptions options = {});

  IndexCache(const IndexCache&) = delete;
  IndexCache& operator=(const IndexCache&) = delete;

  /// Register an artifact path under `id`. Registration is metadata only —
  /// nothing is opened until the first acquire. Throws std::invalid_argument
  /// on an empty or duplicate id.
  void add_reference(std::string id, std::string path);

  bool has_reference(const std::string& id) const;
  std::vector<std::string> reference_ids() const;

  /// Get-or-load with LRU update. Thread-safe; a miss opens the artifact
  /// under the cache lock (concurrent acquires of other ids wait — loads
  /// are rare and correctness is simpler than per-entry latches). Throws
  /// std::out_of_range for an unregistered id and propagates
  /// std::runtime_error from a corrupt artifact.
  std::shared_ptr<const index::MappedIndex> acquire(const std::string& id);

  /// Is `id` currently resident (without touching LRU order)?
  bool resident(const std::string& id) const;
  /// Currently resident ids, most recently used first.
  std::vector<std::string> resident_ids() const;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t resident = 0;
    std::uint64_t resident_bytes = 0;
  };
  Stats stats() const;

  const IndexCacheOptions& options() const { return options_; }

 private:
  struct Entry {
    std::string id;
    std::shared_ptr<const index::MappedIndex> index;
  };

  void update_resident_bytes_locked();

  IndexCacheOptions options_;
  obs::Counter hits_metric_;
  obs::Counter misses_metric_;
  obs::Counter evictions_metric_;
  obs::Gauge resident_bytes_metric_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::string> paths_;
  /// LRU order, front = most recently used.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> resident_;
  Stats stats_;
};

}  // namespace pim::serve
