// Admission control (S41): bounded queue depth with reject-with-reason
// load shedding.
//
// A serving queue without a bound converts overload into unbounded latency
// for everyone; with one, excess offered load is shed at the door with an
// actionable reason and admitted requests keep a bounded worst-case wait
// (the queue can hold at most max_queued_reads of work in front of any
// admitted request). The policy is deliberately a pure function of queue
// occupancy + the candidate request — it holds no lock and mutates no
// state, so RequestQueue can consult it under its own mutex and the
// decision is exact, not racy.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "src/serve/request.h"

namespace pim::serve {

struct AdmissionOptions {
  /// Maximum queued (admitted, not yet dispatched) requests. 0 = unlimited.
  std::size_t max_queued_requests = 1024;
  /// Maximum queued reads across all queued requests — the bound that
  /// actually caps queueing delay, since service time scales with reads.
  /// 0 = unlimited.
  std::size_t max_queued_reads = 65536;
  /// Reject a single request larger than max_queued_reads outright (it
  /// could never be admitted, even against an empty queue).
  bool reject_oversized = true;
};

class AdmissionControl {
 public:
  explicit AdmissionControl(AdmissionOptions options = {})
      : options_(options) {}

  /// Admission verdict for `request` against the current queue occupancy:
  /// std::nullopt admits; otherwise the returned string is the rejection
  /// reason surfaced in AlignResponse::reason. Called by RequestQueue under
  /// its lock.
  std::optional<std::string> vet(std::size_t queued_requests,
                                 std::size_t queued_reads,
                                 const AlignRequest& request) const;

  const AdmissionOptions& options() const { return options_; }

 private:
  AdmissionOptions options_;
};

}  // namespace pim::serve
