// AlignmentService (S41): the in-process, multi-client front door over any
// AlignmentEngine.
//
// Composition: RequestQueue (admission-controlled, priority-classed MPSC
// submission surface) + DynamicBatcher (coalesce -> one ReadBatch -> chunk
// seam -> per-request future demux). The service owns both plus the shared
// tallies and the serve.* metric handles, and adds lifecycle: graceful
// drain (serve everything admitted, then stop) or abort (fail what is
// still queued, finish only the in-flight batch).
//
//   obs::MetricsRegistry registry;                     // optional
//   serve::AlignmentService service(engine, {.metrics = &registry});
//   auto future = service.submit({.reads = reads,
//                                 .priority = RequestPriority::kInteractive,
//                                 .deadline = serve::deadline_in(5ms)});
//   AlignResponse r = future.get();                    // r.results per read
//
// Results are bit-identical to a direct engine.align_batch over the same
// reads — batching is a scheduling decision, never a semantic one
// (asserted in tests/test_serve.cpp).
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/align/engine.h"
#include "src/obs/metrics.h"
#include "src/serve/batcher.h"
#include "src/serve/index_cache.h"
#include "src/serve/request_queue.h"

namespace pim::serve {

struct ServiceOptions {
  AdmissionOptions admission;  ///< Queue bounds (load shedding).
  BatchPolicy batching;        ///< Coalescing size/age/scheduler policy.
  /// Observability sink (S40). When set, the service publishes the serve.*
  /// series: submitted/admitted/rejected/expired/completed counters, batch
  /// and read counters, queue_depth/queue_reads gauges, and
  /// queue_wait_ms / latency_ms / batch_fill / batch_reads / linger_us
  /// histograms (p50/p95/p99 scrapeable via HistogramSample::percentile).
  /// Also propagated to the chunked scheduler (sched.* series) when
  /// batching.parallel.metrics is unset. Null = near-zero overhead.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Configuration of a multi-reference service (S42): how each per-reference
/// lane aligns and serves.
struct MultiReferenceOptions {
  /// Two-stage pipeline configuration for every lane's SoftwareEngine.
  align::AlignerOptions aligner;
  /// Admission/batching/metrics applied to every lane (and, for metrics,
  /// the routing layer itself). Lanes share one registry, so the serve.*
  /// series aggregates across references.
  ServiceOptions service;
};

class AlignmentService {
 public:
  /// `engine` must outlive the service. The engine is driven from the
  /// service's batcher thread only, so non-thread-safe backends (PimEngine,
  /// ShardedEngine, a whole PimChipFleet) serve safely; thread-safe engines
  /// additionally fan each batch across the chunked parallel scheduler per
  /// batching.parallel.
  explicit AlignmentService(const align::AlignmentEngine& engine,
                            ServiceOptions options = {});

  /// Multi-reference mode (S42): requests carry a reference_id and are
  /// routed to a per-reference lane — a SoftwareEngine over the cache's
  /// MappedIndex plus a dedicated queue/batcher — created on first use.
  /// `cache` must outlive the service and decides residency: when it evicts
  /// a reference, the service retires that lane (draining it) on the next
  /// submit, so engine memory follows the cache's LRU policy. Results are
  /// bit-identical to a single-reference service over the same artifact
  /// (asserted in tests/test_serve.cpp).
  explicit AlignmentService(IndexCache& cache,
                            MultiReferenceOptions options = {});

  /// Graceful: drains admitted requests before stopping.
  ~AlignmentService();

  AlignmentService(const AlignmentService&) = delete;
  AlignmentService& operator=(const AlignmentService&) = delete;

  /// Thread-safe, non-blocking (admission is O(1) under one lock). The
  /// future resolves with kOk results, or kRejected / kExpired / kShutdown
  /// and a reason.
  ResponseFuture submit(AlignRequest request);

  /// Blocking convenience: submit and wait.
  AlignResponse align(AlignRequest request);

  enum class ShutdownMode {
    kDrain,  ///< Serve everything already admitted, then stop.
    kAbort,  ///< Fail queued requests with kShutdown; only the batch
             ///< already on the engine completes.
  };
  /// Stop accepting work and stop the batcher. Idempotent; both modes
  /// block until the batcher thread has exited.
  void shutdown(ShutdownMode mode = ShutdownMode::kDrain);

  /// Single mode: this service's tallies. Multi-reference mode: routing
  /// rejections plus the merged tallies of every lane, including lanes
  /// already retired by eviction or shutdown.
  ServiceCounters::Snapshot counters() const;
  std::size_t queue_depth() const;
  std::size_t queued_reads() const;
  /// Merged engine counters across every batch served so far (all lanes in
  /// multi-reference mode).
  align::EngineStats engine_stats() const;

  /// True when constructed over an IndexCache.
  bool multi_reference() const { return cache_ != nullptr; }
  /// reference_ids with a live lane (multi-reference mode; empty otherwise).
  std::vector<std::string> active_lanes() const;

  /// Single mode only (multi-reference services have one engine per lane).
  const align::AlignmentEngine& engine() const { return *engine_; }
  const ServiceOptions& options() const { return options_; }

 private:
  struct Lane;

  ResponseFuture fail_fast(RequestStatus status, std::string reason);
  ResponseFuture route_and_submit(AlignRequest request);
  void retire_lanes(std::vector<std::shared_ptr<Lane>> retired,
                    ShutdownMode mode);

  const align::AlignmentEngine* engine_ = nullptr;
  ServiceOptions options_;
  ServiceCounters counters_;
  ServeMetrics metrics_;
  std::unique_ptr<RequestQueue> queue_;
  std::unique_ptr<DynamicBatcher> batcher_;

  // Multi-reference mode (null/empty in single mode).
  IndexCache* cache_ = nullptr;
  MultiReferenceOptions multi_options_;
  mutable std::mutex lanes_mu_;
  bool accepting_ = true;  ///< Guarded by lanes_mu_ (multi mode only).
  std::map<std::string, std::shared_ptr<Lane>> lanes_;
  /// Final tallies of retired lanes (guarded by lanes_mu_), so counters()
  /// and engine_stats() stay complete across evictions and shutdown.
  ServiceCounters::Snapshot retired_tally_;
  align::EngineStats retired_engine_stats_;
};

}  // namespace pim::serve
