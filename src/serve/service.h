// AlignmentService (S41): the in-process, multi-client front door over any
// AlignmentEngine.
//
// Composition: RequestQueue (admission-controlled, priority-classed MPSC
// submission surface) + DynamicBatcher (coalesce -> one ReadBatch -> chunk
// seam -> per-request future demux). The service owns both plus the shared
// tallies and the serve.* metric handles, and adds lifecycle: graceful
// drain (serve everything admitted, then stop) or abort (fail what is
// still queued, finish only the in-flight batch).
//
//   obs::MetricsRegistry registry;                     // optional
//   serve::AlignmentService service(engine, {.metrics = &registry});
//   auto future = service.submit({.reads = reads,
//                                 .priority = RequestPriority::kInteractive,
//                                 .deadline = serve::deadline_in(5ms)});
//   AlignResponse r = future.get();                    // r.results per read
//
// Results are bit-identical to a direct engine.align_batch over the same
// reads — batching is a scheduling decision, never a semantic one
// (asserted in tests/test_serve.cpp).
#pragma once

#include <cstddef>
#include <memory>

#include "src/align/engine.h"
#include "src/obs/metrics.h"
#include "src/serve/batcher.h"
#include "src/serve/request_queue.h"

namespace pim::serve {

struct ServiceOptions {
  AdmissionOptions admission;  ///< Queue bounds (load shedding).
  BatchPolicy batching;        ///< Coalescing size/age/scheduler policy.
  /// Observability sink (S40). When set, the service publishes the serve.*
  /// series: submitted/admitted/rejected/expired/completed counters, batch
  /// and read counters, queue_depth/queue_reads gauges, and
  /// queue_wait_ms / latency_ms / batch_fill / batch_reads / linger_us
  /// histograms (p50/p95/p99 scrapeable via HistogramSample::percentile).
  /// Also propagated to the chunked scheduler (sched.* series) when
  /// batching.parallel.metrics is unset. Null = near-zero overhead.
  obs::MetricsRegistry* metrics = nullptr;
};

class AlignmentService {
 public:
  /// `engine` must outlive the service. The engine is driven from the
  /// service's batcher thread only, so non-thread-safe backends (PimEngine,
  /// ShardedEngine, a whole PimChipFleet) serve safely; thread-safe engines
  /// additionally fan each batch across the chunked parallel scheduler per
  /// batching.parallel.
  explicit AlignmentService(const align::AlignmentEngine& engine,
                            ServiceOptions options = {});
  /// Graceful: drains admitted requests before stopping.
  ~AlignmentService();

  AlignmentService(const AlignmentService&) = delete;
  AlignmentService& operator=(const AlignmentService&) = delete;

  /// Thread-safe, non-blocking (admission is O(1) under one lock). The
  /// future resolves with kOk results, or kRejected / kExpired / kShutdown
  /// and a reason.
  ResponseFuture submit(AlignRequest request);

  /// Blocking convenience: submit and wait.
  AlignResponse align(AlignRequest request);

  enum class ShutdownMode {
    kDrain,  ///< Serve everything already admitted, then stop.
    kAbort,  ///< Fail queued requests with kShutdown; only the batch
             ///< already on the engine completes.
  };
  /// Stop accepting work and stop the batcher. Idempotent; both modes
  /// block until the batcher thread has exited.
  void shutdown(ShutdownMode mode = ShutdownMode::kDrain);

  ServiceCounters::Snapshot counters() const { return counters_.snapshot(); }
  std::size_t queue_depth() const { return queue_->depth(); }
  std::size_t queued_reads() const { return queue_->queued_reads(); }
  /// Merged engine counters across every batch served so far.
  align::EngineStats engine_stats() const { return batcher_->engine_stats(); }

  const align::AlignmentEngine& engine() const { return *engine_; }
  const ServiceOptions& options() const { return options_; }

 private:
  const align::AlignmentEngine* engine_;
  ServiceOptions options_;
  ServiceCounters counters_;
  ServeMetrics metrics_;
  std::unique_ptr<RequestQueue> queue_;
  std::unique_ptr<DynamicBatcher> batcher_;
};

}  // namespace pim::serve
