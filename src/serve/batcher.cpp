#include "src/serve/batcher.h"

#include <algorithm>
#include <exception>
#include <utility>
#include <vector>

#include "src/align/chunk_demux.h"

namespace pim::serve {

namespace {

double ms_since(ServiceClock::time_point t0, ServiceClock::time_point t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

DynamicBatcher::DynamicBatcher(const align::AlignmentEngine& engine,
                               RequestQueue& queue, ServiceCounters* counters,
                               ServeMetrics metrics, BatchPolicy policy)
    : engine_(&engine),
      queue_(&queue),
      counters_(counters),
      metrics_(metrics),
      policy_(policy) {
  thread_ = std::thread([this] { run(); });
}

DynamicBatcher::~DynamicBatcher() { join(); }

void DynamicBatcher::join() {
  std::lock_guard<std::mutex> lk(join_mu_);
  if (joined_) return;
  thread_.join();
  joined_ = true;
}

align::EngineStats DynamicBatcher::engine_stats() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return engine_stats_;
}

void DynamicBatcher::run() {
  align::ReadBatchBuilder builder;
  const RequestQueue::GatherPolicy gather{policy_.max_batch_reads,
                                          policy_.max_linger};
  while (true) {
    auto pending = queue_->gather(gather);
    if (pending.empty()) break;  // queue closed and drained
    dispatch(std::move(pending), builder);
  }
}

void DynamicBatcher::dispatch(std::vector<PendingRequest> pending,
                              align::ReadBatchBuilder& builder) {
  const auto now = ServiceClock::now();

  // Deadline enforcement at dequeue: expired requests fail fast and never
  // consume engine cycles. (Their reads also don't dilute the batch.)
  std::vector<PendingRequest> live;
  live.reserve(pending.size());
  for (auto& p : pending) {
    if (p.request.deadline && *p.request.deadline < now) {
      counters_->expired.fetch_add(1, std::memory_order_relaxed);
      metrics_.expired.add();
      AlignResponse response;
      response.status = RequestStatus::kExpired;
      response.reason = "deadline expired before dispatch";
      response.queue_ms = ms_since(p.admitted_at, now);
      response.latency_ms = response.queue_ms;
      p.promise.set_value(std::move(response));
    } else {
      live.push_back(std::move(p));
    }
  }
  if (live.empty()) return;

  // Pack the survivors into one batch; record per-request extents for the
  // demux. The builder's arenas are recycled across dispatches.
  std::size_t total_reads = 0;
  auto oldest = live.front().admitted_at;
  for (const auto& p : live) {
    total_reads += p.request.num_reads();
    oldest = std::min(oldest, p.admitted_at);
  }
  builder.reserve(total_reads, total_reads * 128);
  std::vector<std::size_t> bounds;
  bounds.reserve(live.size() + 1);
  bounds.push_back(0);
  for (const auto& p : live) {
    for (const auto& read : p.request.reads) builder.add(read);
    bounds.push_back(bounds.back() + p.request.num_reads());
  }
  align::ReadBatch batch = builder.build();

  const std::uint64_t seq =
      counters_->batches.fetch_add(1, std::memory_order_relaxed) + 1;
  counters_->batched_reads.fetch_add(total_reads, std::memory_order_relaxed);
  metrics_.batches.add();
  metrics_.batched_reads.add(total_reads);
  metrics_.batch_reads_hist.observe(static_cast<double>(total_reads));
  metrics_.batch_fill.observe(
      policy_.max_batch_reads
          ? static_cast<double>(total_reads) /
                static_cast<double>(policy_.max_batch_reads)
          : 1.0);
  metrics_.linger_us.observe(
      std::chrono::duration<double, std::micro>(now - oldest).count());

  // Pre-size each response and stamp dispatch-time accounting.
  struct InFlight {
    PendingRequest pending;
    AlignResponse response;
    bool done = false;
  };
  std::vector<InFlight> flights;
  flights.reserve(live.size());
  for (auto& p : live) {
    InFlight f;
    f.response.results.reserve(p.request.num_reads());
    f.response.queue_ms = ms_since(p.admitted_at, now);
    f.response.batch_seq = seq;
    f.response.batch_reads = total_reads;
    f.pending = std::move(p);
    flights.push_back(std::move(f));
  }
  for (const auto& f : flights) {
    metrics_.queue_wait_ms.observe(f.response.queue_ms);
  }

  // Demux the chunk seam back onto request extents: slices copy results
  // out of the (recycled) chunk arena, completion resolves the future —
  // a request never waits for later strangers in its batch.
  align::ChunkDemux demux(
      std::move(bounds),
      [&flights](std::size_t interval, const align::BatchResultChunk& chunk,
                 std::size_t begin, std::size_t end) {
        auto& results = flights[interval].response.results;
        for (std::size_t i = begin; i < end; ++i) {
          results.push_back(chunk.result->result(i - chunk.begin));
        }
      },
      [this, &flights](std::size_t interval) {
        InFlight& f = flights[interval];
        f.response.latency_ms =
            ms_since(f.pending.admitted_at, ServiceClock::now());
        counters_->completed.fetch_add(1, std::memory_order_relaxed);
        metrics_.completed.add();
        metrics_.latency_ms.observe(f.response.latency_ms);
        f.done = true;
        f.pending.promise.set_value(std::move(f.response));
      });

  try {
    const align::EngineStats stats = align::align_batch_parallel_chunked(
        *engine_, batch, demux.sink(), policy_.parallel,
        policy_.best_hit_only);
    std::lock_guard<std::mutex> lk(stats_mu_);
    engine_stats_.merge(stats);
  } catch (...) {
    // Engine/backend failure: surface it to the affected requests, keep
    // the service alive for the rest.
    const std::exception_ptr error = std::current_exception();
    for (auto& f : flights) {
      if (!f.done) f.pending.promise.set_exception(error);
    }
    builder.reset();
    return;
  }
  builder.reset(std::move(batch));  // recycle the arena for the next batch
}

}  // namespace pim::serve
