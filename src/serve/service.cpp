#include "src/serve/service.h"

#include <utility>

namespace pim::serve {

AlignmentService::AlignmentService(const align::AlignmentEngine& engine,
                                   ServiceOptions options)
    : engine_(&engine), options_(options) {
  // Route the scheduler's sched.* series into the same registry unless the
  // caller wired a different one explicitly (mirrors StreamingPipeline).
  if (options_.metrics != nullptr &&
      options_.batching.parallel.metrics == nullptr) {
    options_.batching.parallel.metrics = options_.metrics;
  }
  metrics_ = ServeMetrics::install(options_.metrics);
  queue_ = std::make_unique<RequestQueue>(
      AdmissionControl(options_.admission), &counters_, metrics_);
  batcher_ = std::make_unique<DynamicBatcher>(*engine_, *queue_, &counters_,
                                              metrics_, options_.batching);
}

AlignmentService::~AlignmentService() { shutdown(ShutdownMode::kDrain); }

ResponseFuture AlignmentService::submit(AlignRequest request) {
  return queue_->submit(std::move(request));
}

AlignResponse AlignmentService::align(AlignRequest request) {
  return submit(std::move(request)).get();
}

void AlignmentService::shutdown(ShutdownMode mode) {
  queue_->close();
  if (mode == ShutdownMode::kAbort) {
    // Rip out whatever is still queued and fail it; the batcher may have
    // already gathered some of these into its current batch — those are
    // served normally (both outcomes are valid terminal states).
    auto leftovers = queue_->drain_now();
    for (auto& p : leftovers) {
      counters_.aborted.fetch_add(1, std::memory_order_relaxed);
      AlignResponse response;
      response.status = RequestStatus::kShutdown;
      response.reason = "service shut down before dispatch";
      response.queue_ms = std::chrono::duration<double, std::milli>(
                              ServiceClock::now() - p.admitted_at)
                              .count();
      response.latency_ms = response.queue_ms;
      p.promise.set_value(std::move(response));
    }
  }
  batcher_->join();
}

}  // namespace pim::serve
