#include "src/serve/service.h"

#include <future>
#include <utility>
#include <vector>

namespace pim::serve {

/// One reference's serving stack: the pinned mapped index (kept alive here
/// even if the cache evicts it mid-flight), a SoftwareEngine borrowing its
/// FmIndex, and a dedicated inner service (queue + batcher thread). The
/// members construct in exactly this order, so the engine and service only
/// ever see a live index.
struct AlignmentService::Lane {
  std::shared_ptr<const index::MappedIndex> pinned;
  align::SoftwareEngine engine;
  AlignmentService service;

  Lane(std::shared_ptr<const index::MappedIndex> idx,
       const MultiReferenceOptions& options)
      : pinned(std::move(idx)),
        engine(pinned->index(), options.aligner),
        service(engine, options.service) {}
};

AlignmentService::AlignmentService(const align::AlignmentEngine& engine,
                                   ServiceOptions options)
    : engine_(&engine), options_(options) {
  // Route the scheduler's sched.* series into the same registry unless the
  // caller wired a different one explicitly (mirrors StreamingPipeline).
  if (options_.metrics != nullptr &&
      options_.batching.parallel.metrics == nullptr) {
    options_.batching.parallel.metrics = options_.metrics;
  }
  metrics_ = ServeMetrics::install(options_.metrics);
  queue_ = std::make_unique<RequestQueue>(
      AdmissionControl(options_.admission), &counters_, metrics_);
  batcher_ = std::make_unique<DynamicBatcher>(*engine_, *queue_, &counters_,
                                              metrics_, options_.batching);
}

AlignmentService::AlignmentService(IndexCache& cache,
                                   MultiReferenceOptions options)
    : options_(options.service),
      cache_(&cache),
      multi_options_(std::move(options)) {
  if (multi_options_.service.metrics != nullptr &&
      multi_options_.service.batching.parallel.metrics == nullptr) {
    multi_options_.service.batching.parallel.metrics =
        multi_options_.service.metrics;
  }
  // The routing layer shares the lanes' registry: fail-fast rejections show
  // up in serve.submitted / serve.rejected alongside lane traffic.
  metrics_ = ServeMetrics::install(multi_options_.service.metrics);
}

AlignmentService::~AlignmentService() { shutdown(ShutdownMode::kDrain); }

ResponseFuture AlignmentService::fail_fast(RequestStatus status,
                                           std::string reason) {
  counters_.submitted.fetch_add(1, std::memory_order_relaxed);
  metrics_.submitted.add(1);
  if (status == RequestStatus::kShutdown) {
    counters_.rejected_shutdown.fetch_add(1, std::memory_order_relaxed);
  } else {
    counters_.rejected.fetch_add(1, std::memory_order_relaxed);
    metrics_.rejected.add(1);
  }
  std::promise<AlignResponse> promise;
  AlignResponse response;
  response.status = status;
  response.reason = std::move(reason);
  promise.set_value(std::move(response));
  return promise.get_future();
}

namespace {

void add_counters(ServiceCounters::Snapshot& s,
                  const ServiceCounters::Snapshot& other) {
  s.submitted += other.submitted;
  s.admitted += other.admitted;
  s.rejected += other.rejected;
  s.rejected_shutdown += other.rejected_shutdown;
  s.expired += other.expired;
  s.aborted += other.aborted;
  s.completed += other.completed;
  s.batches += other.batches;
  s.batched_reads += other.batched_reads;
}

}  // namespace

/// Drains retired lanes (outside lanes_mu_ — draining serves requests) and
/// folds their final tallies into retired_tally_ so counters() never loses
/// history to an eviction.
void AlignmentService::retire_lanes(
    std::vector<std::shared_ptr<Lane>> retired, ShutdownMode mode) {
  if (retired.empty()) return;
  for (auto& old : retired) old->service.shutdown(mode);
  std::lock_guard<std::mutex> lock(lanes_mu_);
  for (auto& old : retired) {
    add_counters(retired_tally_, old->service.counters());
    retired_engine_stats_.merge(old->service.engine_stats());
  }
}

ResponseFuture AlignmentService::route_and_submit(AlignRequest request) {
  if (request.reference_id.empty()) {
    return fail_fast(RequestStatus::kRejected,
                     "missing reference_id (multi-reference service)");
  }
  if (!cache_->has_reference(request.reference_id)) {
    return fail_fast(RequestStatus::kRejected,
                     "unknown reference_id '" + request.reference_id + "'");
  }
  ResponseFuture future;
  std::vector<std::shared_ptr<Lane>> retired;
  {
    std::lock_guard<std::mutex> lock(lanes_mu_);
    if (!accepting_) {
      return fail_fast(RequestStatus::kShutdown, "service is shut down");
    }
    auto it = lanes_.find(request.reference_id);
    if (it == lanes_.end()) {
      std::shared_ptr<const index::MappedIndex> idx;
      try {
        idx = cache_->acquire(request.reference_id);
      } catch (const std::exception& e) {
        return fail_fast(RequestStatus::kRejected,
                         "reference '" + request.reference_id +
                             "' failed to load: " + e.what());
      }
      it = lanes_
               .emplace(request.reference_id,
                        std::make_shared<Lane>(std::move(idx), multi_options_))
               .first;
    }
    const std::string id = std::move(request.reference_id);
    // Routing is resolved; clear the id so the lane's single-engine service
    // (which rejects routed requests) accepts it. Submitting under lanes_mu_
    // is what makes reaping safe: a lane can only be retired when no submit
    // can still be heading for it. Admission is non-blocking, so this holds
    // the lock for O(enqueue).
    request.reference_id.clear();
    future = it->second->service.submit(std::move(request));
    // Retire lanes whose reference the cache evicted (LRU): drop them from
    // the routing table now, drain them after unlocking. Engine memory
    // thereby follows the cache's residency policy.
    for (auto li = lanes_.begin(); li != lanes_.end();) {
      if (li->first != id && !cache_->resident(li->first)) {
        retired.push_back(std::move(li->second));
        li = lanes_.erase(li);
      } else {
        ++li;
      }
    }
  }
  retire_lanes(std::move(retired), ShutdownMode::kDrain);
  return future;
}

ResponseFuture AlignmentService::submit(AlignRequest request) {
  if (cache_ == nullptr) {
    if (!request.reference_id.empty()) {
      return fail_fast(
          RequestStatus::kRejected,
          "reference routing unavailable: service has a fixed engine");
    }
    return queue_->submit(std::move(request));
  }
  return route_and_submit(std::move(request));
}

AlignResponse AlignmentService::align(AlignRequest request) {
  return submit(std::move(request)).get();
}

void AlignmentService::shutdown(ShutdownMode mode) {
  if (cache_ != nullptr) {
    std::vector<std::shared_ptr<Lane>> lanes;
    {
      std::lock_guard<std::mutex> lock(lanes_mu_);
      accepting_ = false;
      lanes.reserve(lanes_.size());
      for (auto& [id, lane] : lanes_) lanes.push_back(std::move(lane));
      lanes_.clear();
    }
    retire_lanes(std::move(lanes), mode);
    return;
  }
  queue_->close();
  if (mode == ShutdownMode::kAbort) {
    // Rip out whatever is still queued and fail it; the batcher may have
    // already gathered some of these into its current batch — those are
    // served normally (both outcomes are valid terminal states).
    auto leftovers = queue_->drain_now();
    for (auto& p : leftovers) {
      counters_.aborted.fetch_add(1, std::memory_order_relaxed);
      AlignResponse response;
      response.status = RequestStatus::kShutdown;
      response.reason = "service shut down before dispatch";
      response.queue_ms = std::chrono::duration<double, std::milli>(
                              ServiceClock::now() - p.admitted_at)
                              .count();
      response.latency_ms = response.queue_ms;
      p.promise.set_value(std::move(response));
    }
  }
  batcher_->join();
}

ServiceCounters::Snapshot AlignmentService::counters() const {
  auto s = counters_.snapshot();
  if (cache_ != nullptr) {
    std::lock_guard<std::mutex> lock(lanes_mu_);
    add_counters(s, retired_tally_);
    for (const auto& [id, lane] : lanes_) {
      add_counters(s, lane->service.counters());
    }
  }
  return s;
}

std::size_t AlignmentService::queue_depth() const {
  if (cache_ == nullptr) return queue_->depth();
  std::lock_guard<std::mutex> lock(lanes_mu_);
  std::size_t depth = 0;
  for (const auto& [id, lane] : lanes_) depth += lane->service.queue_depth();
  return depth;
}

std::size_t AlignmentService::queued_reads() const {
  if (cache_ == nullptr) return queue_->queued_reads();
  std::lock_guard<std::mutex> lock(lanes_mu_);
  std::size_t reads = 0;
  for (const auto& [id, lane] : lanes_) reads += lane->service.queued_reads();
  return reads;
}

align::EngineStats AlignmentService::engine_stats() const {
  if (cache_ == nullptr) return batcher_->engine_stats();
  std::lock_guard<std::mutex> lock(lanes_mu_);
  align::EngineStats stats = retired_engine_stats_;
  for (const auto& [id, lane] : lanes_) {
    stats.merge(lane->service.engine_stats());
  }
  return stats;
}

std::vector<std::string> AlignmentService::active_lanes() const {
  std::vector<std::string> ids;
  std::lock_guard<std::mutex> lock(lanes_mu_);
  ids.reserve(lanes_.size());
  for (const auto& [id, lane] : lanes_) ids.push_back(id);
  return ids;
}

}  // namespace pim::serve
