// Wire types of the alignment service layer (S41).
//
// The serving subsystem turns the repo's batch-first engines into a
// multi-client, latency-sensitive front door: arbitrary threads submit
// AlignRequests (one or many reads, a priority class, an optional
// deadline) and get a future for an AlignResponse back. Everything the
// queue, the dynamic batcher, and the service facade share — request /
// response structs, status codes, the steady-clock vocabulary, the shared
// tally block, and the serve.* metric handles — lives here so the pieces
// compose without cyclic includes.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <optional>
#include <string>
#include <vector>

#include "src/align/aligner.h"
#include "src/genome/alphabet.h"
#include "src/obs/metrics.h"

namespace pim::serve {

/// Service time base. Deadlines are absolute steady-clock points so queue
/// residency counts against them (a wall-clock deadline would jump under
/// NTP adjustments mid-queue).
using ServiceClock = std::chrono::steady_clock;

/// Absolute deadline `delta` from now — the common way clients build one.
inline ServiceClock::time_point deadline_in(std::chrono::microseconds delta) {
  return ServiceClock::now() + delta;
}

/// Two-class priority: interactive requests are dequeued before batch ones
/// whenever both are queued (FIFO within a class). Two classes cover the
/// serving split that matters — a clinician's panel vs a cohort backfill —
/// without inviting priority-inversion puzzles.
enum class RequestPriority : std::uint8_t { kInteractive = 0, kBatch = 1 };
inline constexpr std::size_t kNumPriorities = 2;

struct AlignRequest {
  /// Reads to align, in request order (the response's results index
  /// matches). An empty request is legal and completes immediately.
  std::vector<std::vector<genome::Base>> reads;
  /// Which reference to align against (S42 multi-reference serving). On a
  /// multi-reference service this selects the lane (and faults the mapped
  /// index in through the IndexCache); it must name a registered reference
  /// and must not be empty. On a single-engine service it must be empty —
  /// the engine is fixed. Violations fail fast with kRejected.
  std::string reference_id;
  RequestPriority priority = RequestPriority::kBatch;
  /// Absolute deadline. Enforced at dequeue: a request whose deadline has
  /// passed before its batch is assembled fails fast with kExpired instead
  /// of wasting engine cycles. (A deadline cannot abort a batch already on
  /// the engine.)
  std::optional<ServiceClock::time_point> deadline;

  std::size_t num_reads() const { return reads.size(); }
};

enum class RequestStatus : std::uint8_t {
  kOk = 0,        ///< Aligned; results holds one entry per read.
  kRejected,      ///< Shed at admission (queue full); reason says why.
  kExpired,       ///< Deadline passed before dispatch.
  kShutdown,      ///< Submitted after close, or aborted by a non-drain stop.
};

const char* to_string(RequestStatus status);

struct AlignResponse {
  RequestStatus status = RequestStatus::kOk;
  /// Human-readable cause for non-kOk outcomes ("queue full: ...").
  std::string reason;
  /// One entry per request read, bit-identical to a direct
  /// AlignmentEngine::align_batch over the same reads (asserted in
  /// tests/test_serve.cpp). Empty unless status == kOk.
  std::vector<align::AlignmentResult> results;
  double queue_ms = 0.0;    ///< Admission -> batch dispatch.
  double latency_ms = 0.0;  ///< Admission -> completion (end to end).
  std::uint64_t batch_seq = 0;   ///< Service batch that carried it (1-based).
  std::size_t batch_reads = 0;   ///< Reads coalesced into that batch.

  bool ok() const { return status == RequestStatus::kOk; }
};

using ResponseFuture = std::future<AlignResponse>;

/// Cumulative service tallies, shared by the queue (admission side) and the
/// batcher (dispatch side) and snapshotted by AlignmentService::counters().
/// Atomics, not a mutex: every field is touched on the submit or dispatch
/// hot path.
struct ServiceCounters {
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> admitted{0};
  std::atomic<std::uint64_t> rejected{0};           ///< Load-shed (queue full).
  std::atomic<std::uint64_t> rejected_shutdown{0};  ///< Submitted after close.
  std::atomic<std::uint64_t> expired{0};            ///< Deadline at dequeue.
  std::atomic<std::uint64_t> aborted{0};            ///< Failed by abort stop.
  std::atomic<std::uint64_t> completed{0};          ///< Served with kOk.
  std::atomic<std::uint64_t> batches{0};            ///< Batches dispatched.
  std::atomic<std::uint64_t> batched_reads{0};      ///< Reads through batches.

  struct Snapshot {
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t rejected_shutdown = 0;
    std::uint64_t expired = 0;
    std::uint64_t aborted = 0;
    std::uint64_t completed = 0;
    std::uint64_t batches = 0;
    std::uint64_t batched_reads = 0;
  };
  Snapshot snapshot() const {
    Snapshot s;
    s.submitted = submitted.load(std::memory_order_relaxed);
    s.admitted = admitted.load(std::memory_order_relaxed);
    s.rejected = rejected.load(std::memory_order_relaxed);
    s.rejected_shutdown = rejected_shutdown.load(std::memory_order_relaxed);
    s.expired = expired.load(std::memory_order_relaxed);
    s.aborted = aborted.load(std::memory_order_relaxed);
    s.completed = completed.load(std::memory_order_relaxed);
    s.batches = batches.load(std::memory_order_relaxed);
    s.batched_reads = batched_reads.load(std::memory_order_relaxed);
    return s;
  }
};

/// serve.* metric handles (S40 registry). Built once at service setup;
/// default-constructed (inert) when no registry is installed, so the hot
/// path pays one branch per event. Handles are value types — the queue and
/// batcher each hold a copy.
struct ServeMetrics {
  obs::Counter submitted;
  obs::Counter admitted;
  obs::Counter rejected;
  obs::Counter expired;
  obs::Counter completed;
  obs::Counter batches;
  obs::Counter batched_reads;
  obs::Gauge queue_depth;        ///< Requests queued (set on every change).
  obs::Gauge queue_reads;        ///< Reads queued.
  obs::Histogram queue_wait_ms;  ///< Admission -> dispatch, per request.
  obs::Histogram latency_ms;     ///< Admission -> completion, per request.
  obs::Histogram batch_fill;     ///< batch reads / max_batch_reads, in [0,1+].
  obs::Histogram batch_reads_hist;  ///< Absolute coalesced batch size.
  obs::Histogram linger_us;      ///< Oldest-request age at dispatch.

  static ServeMetrics install(obs::MetricsRegistry* registry) {
    ServeMetrics m;
    if (registry == nullptr) return m;
    m.submitted = registry->counter("serve.submitted");
    m.admitted = registry->counter("serve.admitted");
    m.rejected = registry->counter("serve.rejected");
    m.expired = registry->counter("serve.expired");
    m.completed = registry->counter("serve.completed");
    m.batches = registry->counter("serve.batches");
    m.batched_reads = registry->counter("serve.reads");
    m.queue_depth = registry->gauge("serve.queue_depth");
    m.queue_reads = registry->gauge("serve.queue_reads");
    m.queue_wait_ms = registry->histogram("serve.queue_wait_ms");
    m.latency_ms = registry->histogram("serve.latency_ms");
    m.batch_fill = registry->histogram("serve.batch_fill");
    m.batch_reads_hist = registry->histogram("serve.batch_reads");
    m.linger_us = registry->histogram("serve.linger_us");
    return m;
  }
};

}  // namespace pim::serve
