#include "src/serve/index_cache.h"

#include <stdexcept>
#include <utility>

namespace pim::serve {

IndexCache::IndexCache(IndexCacheOptions options)
    : options_(std::move(options)) {
  if (options_.max_resident == 0) options_.max_resident = 1;
  if (options_.metrics != nullptr) {
    hits_metric_ = options_.metrics->counter("service.index_cache.hits");
    misses_metric_ = options_.metrics->counter("service.index_cache.misses");
    evictions_metric_ =
        options_.metrics->counter("service.index_cache.evictions");
    resident_bytes_metric_ =
        options_.metrics->gauge("service.index_cache.resident_bytes");
  }
}

void IndexCache::add_reference(std::string id, std::string path) {
  if (id.empty()) {
    throw std::invalid_argument("IndexCache: empty reference id");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!paths_.emplace(std::move(id), std::move(path)).second) {
    throw std::invalid_argument("IndexCache: duplicate reference id");
  }
}

bool IndexCache::has_reference(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return paths_.count(id) != 0;
}

std::vector<std::string> IndexCache::reference_ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(paths_.size());
  for (const auto& [id, path] : paths_) ids.push_back(id);
  return ids;
}

std::shared_ptr<const index::MappedIndex> IndexCache::acquire(
    const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto path_it = paths_.find(id);
  if (path_it == paths_.end()) {
    throw std::out_of_range("IndexCache: unknown reference id '" + id + "'");
  }
  if (const auto it = resident_.find(id); it != resident_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // touch
    ++stats_.hits;
    hits_metric_.add(1);
    return it->second->index;
  }

  auto mapped = std::make_shared<index::MappedIndex>(
      index::MappedIndex::open(path_it->second, options_.mapped,
                               options_.metrics));
  ++stats_.misses;
  misses_metric_.add(1);
  lru_.push_front(Entry{id, std::move(mapped)});
  resident_[id] = lru_.begin();
  while (lru_.size() > options_.max_resident) {
    // Drop our pin only: a request still holding the shared_ptr keeps the
    // evicted index alive until it finishes.
    resident_.erase(lru_.back().id);
    lru_.pop_back();
    ++stats_.evictions;
    evictions_metric_.add(1);
  }
  update_resident_bytes_locked();
  return lru_.front().index;
}

bool IndexCache::resident(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_.count(id) != 0;
}

std::vector<std::string> IndexCache::resident_ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(lru_.size());
  for (const auto& entry : lru_) ids.push_back(entry.id);
  return ids;
}

IndexCache::Stats IndexCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.resident = lru_.size();
  s.resident_bytes = 0;
  for (const auto& entry : lru_) s.resident_bytes += entry.index->resident_bytes();
  return s;
}

void IndexCache::update_resident_bytes_locked() {
  std::uint64_t bytes = 0;
  for (const auto& entry : lru_) bytes += entry.index->resident_bytes();
  resident_bytes_metric_.set(static_cast<double>(bytes));
}

}  // namespace pim::serve
