#include "src/serve/request_queue.h"

#include <utility>

namespace pim::serve {

namespace {

/// Fulfill a promise with a terminal non-result response.
void finish(std::promise<AlignResponse>& promise, RequestStatus status,
            std::string reason) {
  AlignResponse response;
  response.status = status;
  response.reason = std::move(reason);
  promise.set_value(std::move(response));
}

}  // namespace

const char* to_string(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk:
      return "ok";
    case RequestStatus::kRejected:
      return "rejected";
    case RequestStatus::kExpired:
      return "expired";
    case RequestStatus::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

RequestQueue::RequestQueue(AdmissionControl admission,
                           ServiceCounters* counters, ServeMetrics metrics)
    : admission_(std::move(admission)),
      counters_(counters),
      metrics_(metrics) {}

void RequestQueue::publish_depth_locked() {
  metrics_.queue_depth.set(static_cast<double>(queues_[0].size() +
                                               queues_[1].size()));
  metrics_.queue_reads.set(static_cast<double>(queued_reads_));
}

ResponseFuture RequestQueue::submit(AlignRequest request) {
  counters_->submitted.fetch_add(1, std::memory_order_relaxed);
  metrics_.submitted.add();

  std::promise<AlignResponse> promise;
  ResponseFuture future = promise.get_future();

  // Decide under the lock; fulfill rejected promises outside it so no
  // client continuation ever runs while the queue mutex is held.
  std::optional<std::string> reject_reason;
  bool shutdown = false;
  bool empty = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (closed_) {
      shutdown = true;
    } else if (request.reads.empty()) {
      // Nothing to align, nothing to queue: completes below.
      empty = true;
    } else {
      reject_reason = admission_.vet(queues_[0].size() + queues_[1].size(),
                                     queued_reads_, request);
      if (!reject_reason) {
        counters_->admitted.fetch_add(1, std::memory_order_relaxed);
        metrics_.admitted.add();
        queued_reads_ += request.num_reads();
        const auto pri = static_cast<std::size_t>(request.priority);
        queues_[pri].push_back(PendingRequest{
            std::move(request), std::move(promise), ServiceClock::now()});
        publish_depth_locked();
      }
    }
  }
  if (shutdown) {
    counters_->rejected_shutdown.fetch_add(1, std::memory_order_relaxed);
    metrics_.rejected.add();
    finish(promise, RequestStatus::kShutdown, "service is shutting down");
    return future;
  }
  if (empty) {
    counters_->admitted.fetch_add(1, std::memory_order_relaxed);
    counters_->completed.fetch_add(1, std::memory_order_relaxed);
    metrics_.admitted.add();
    metrics_.completed.add();
    promise.set_value(AlignResponse{});
    return future;
  }
  if (reject_reason) {
    counters_->rejected.fetch_add(1, std::memory_order_relaxed);
    metrics_.rejected.add();
    finish(promise, RequestStatus::kRejected, *std::move(reject_reason));
    return future;
  }
  cv_.notify_all();
  return future;
}

std::vector<PendingRequest> RequestQueue::gather(const GatherPolicy& policy) {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] {
    return closed_ || !queues_[0].empty() || !queues_[1].empty();
  });
  if (queues_[0].empty() && queues_[1].empty()) return {};  // closed + drained

  if (!closed_) {
    // Linger: give concurrent submitters a chance to fill the batch, but
    // never hold the oldest request beyond max_linger. Producers notify on
    // every submit, so the fill condition is re-checked as load arrives.
    const auto oldest =
        [&] {
          ServiceClock::time_point t = ServiceClock::time_point::max();
          for (const auto& q : queues_) {
            if (!q.empty() && q.front().admitted_at < t) {
              t = q.front().admitted_at;
            }
          }
          return t;
        }();
    const auto linger_deadline = oldest + policy.max_linger;
    while (!closed_ && queued_reads_ < policy.max_reads) {
      if (cv_.wait_until(lk, linger_deadline) == std::cv_status::timeout) {
        break;
      }
    }
  }

  // Pop interactive first, then batch, FIFO within each class; stop when
  // the next request would overflow max_reads (but always take one).
  std::vector<PendingRequest> out;
  std::size_t reads = 0;
  bool full = false;
  for (auto& q : queues_) {
    while (!q.empty() && !full) {
      const std::size_t r = q.front().request.num_reads();
      if (!out.empty() && reads + r > policy.max_reads) {
        full = true;
        break;
      }
      reads += r;
      out.push_back(std::move(q.front()));
      q.pop_front();
      if (reads >= policy.max_reads) full = true;
    }
    if (full) break;
  }
  queued_reads_ -= reads;
  publish_depth_locked();
  return out;
}

std::vector<PendingRequest> RequestQueue::drain_now() {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<PendingRequest> out;
  for (auto& q : queues_) {
    while (!q.empty()) {
      out.push_back(std::move(q.front()));
      q.pop_front();
    }
  }
  queued_reads_ = 0;
  publish_depth_locked();
  return out;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return closed_;
}

std::size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queues_[0].size() + queues_[1].size();
}

std::size_t RequestQueue::queued_reads() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queued_reads_;
}

}  // namespace pim::serve
