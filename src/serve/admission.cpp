#include "src/serve/admission.h"

namespace pim::serve {

std::optional<std::string> AdmissionControl::vet(
    std::size_t queued_requests, std::size_t queued_reads,
    const AlignRequest& request) const {
  const std::size_t reads = request.num_reads();
  if (options_.reject_oversized && options_.max_queued_reads > 0 &&
      reads > options_.max_queued_reads) {
    return "request too large: " + std::to_string(reads) + " reads > " +
           std::to_string(options_.max_queued_reads) + " (max_queued_reads)";
  }
  if (options_.max_queued_requests > 0 &&
      queued_requests >= options_.max_queued_requests) {
    return "queue full: " + std::to_string(queued_requests) +
           " requests queued (max_queued_requests " +
           std::to_string(options_.max_queued_requests) + ")";
  }
  if (options_.max_queued_reads > 0 &&
      queued_reads + reads > options_.max_queued_reads) {
    return "queue full: " + std::to_string(queued_reads) + " reads queued + " +
           std::to_string(reads) + " > max_queued_reads " +
           std::to_string(options_.max_queued_reads);
  }
  return std::nullopt;
}

}  // namespace pim::serve
