// Multi-producer request queue with admission control (S41).
//
// The submission side of the service: arbitrary client threads call
// submit() and immediately get a future. Admission (AdmissionControl) is
// decided under the queue lock, so occupancy bounds are exact; rejected
// requests get a ready future carrying the reason and never touch the
// engine. The single consumer — DynamicBatcher — calls gather(), which
// blocks for work and then *lingers* briefly so concurrent submitters can
// coalesce into one hardware-sized batch:
//
//   gather returns when   (a) queued reads reach policy.max_reads, or
//                         (b) the oldest queued request has waited
//                             policy.max_linger, or
//                         (c) the queue is closed (drain: whatever is left).
//
// Priority classes: interactive requests dequeue before batch requests,
// FIFO within a class. close() is the shutdown valve — subsequent submits
// are rejected with kShutdown, gatherers drain what is queued and then get
// an empty gather as the stop signal; drain_now() instead rips everything
// out for the abort path.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

#include "src/serve/admission.h"
#include "src/serve/request.h"

namespace pim::serve {

/// An admitted request in flight: the client's request plus the promise the
/// batcher fulfills and the admission timestamp latencies are measured
/// from.
struct PendingRequest {
  AlignRequest request;
  std::promise<AlignResponse> promise;
  ServiceClock::time_point admitted_at;
};

class RequestQueue {
 public:
  /// `counters` must outlive the queue (AlignmentService owns both).
  RequestQueue(AdmissionControl admission, ServiceCounters* counters,
               ServeMetrics metrics);

  /// Thread-safe. Returns a future that resolves when the request is
  /// served, shed, expired, or aborted. Requests with zero reads complete
  /// immediately with kOk (nothing to align, nothing to queue).
  ResponseFuture submit(AlignRequest request);

  struct GatherPolicy {
    std::size_t max_reads = 4096;
    std::chrono::microseconds max_linger{2000};
  };

  /// Consumer side (one batcher thread). Blocks until at least one request
  /// is queued or the queue is closed; lingers per the policy; then pops up
  /// to max_reads worth of requests (always at least one when any are
  /// queued, even if that request alone exceeds max_reads). An empty return
  /// means closed-and-drained: the consumer should exit.
  std::vector<PendingRequest> gather(const GatherPolicy& policy);

  /// Pop everything queued right now (the abort-shutdown path). Does not
  /// fail the promises — the caller decides the terminal status.
  std::vector<PendingRequest> drain_now();

  /// Reject all future submits (kShutdown) and wake gatherers. Idempotent.
  void close();
  bool closed() const;

  std::size_t depth() const;         ///< Queued requests.
  std::size_t queued_reads() const;  ///< Queued reads.

 private:
  void publish_depth_locked();

  AdmissionControl admission_;
  ServiceCounters* counters_;
  ServeMetrics metrics_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// One FIFO per priority class, drained interactive-first.
  std::deque<PendingRequest> queues_[kNumPriorities];
  std::size_t queued_reads_ = 0;
  bool closed_ = false;
};

}  // namespace pim::serve
