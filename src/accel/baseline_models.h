// Baseline accelerator models — the comparison set of Section VI.
//
// The paper compares against *reported* numbers from the cited works
// (Darwin [7], ReCAM [18], RaceLogic [6], Soap3-dp GPU [5], FPGA [9],
// ASIC [8], AligneR [3], AlignS [13]); it does not re-implement them in RTL.
// We follow the same methodology: each baseline is a literature-constants
// record. Where a cited paper states a figure (ASIC: 135 mW, 1 GB off-chip
// after compression) we use it; where only the PIM-Aligner paper's log-scale
// bar charts constrain the value, the constant is back-solved from the
// ratios the paper states in prose (3.1x / ~2x / 43.8x / 458x throughput-
// per-Watt, ~9x / 1.9x per-mm2, RaceLogic fastest overall) — each constant's
// provenance is documented at its definition in baseline_models.cpp.
#pragma once

#include <vector>

#include "src/accel/metrics.h"

namespace pim::accel {

/// The eight rival platforms, in the paper's figure order:
/// Darwin, ReCAM, RaceLogic, GPU, FPGA, ASIC, AligneR, AlignS.
std::vector<AcceleratorMetrics> baseline_accelerators();

/// Look one up by name; throws std::out_of_range if absent.
AcceleratorMetrics baseline(const std::string& name);

}  // namespace pim::accel
