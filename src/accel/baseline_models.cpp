#include "src/accel/baseline_models.h"

#include <stdexcept>

namespace pim::accel {

std::vector<AcceleratorMetrics> baseline_accelerators() {
  // Provenance key:
  //   [cited]  value stated in the cited baseline paper;
  //   [fig]    read from the PIM-Aligner paper's log-scale bar charts;
  //   [ratio]  back-solved from a ratio the PIM-Aligner paper states in
  //            prose, anchored at PIM-Aligner-n's modeled ~2.6e5 queries/s/W
  //            (see PimChipModel).
  std::vector<AcceleratorMetrics> v;

  // Darwin [7] — ASIC co-processor for long-read assembly, run here on the
  // short-read workload. Power/area [fig]; throughput [fig] (SW family sits
  // below the FM platforms in throughput/Watt).
  v.push_back({"Darwin", AlgorithmFamily::kSmithWaterman,
               /*power_w=*/230.0, /*throughput_qps=*/2.3e6,
               /*area_mm2=*/412.0, /*offchip_gb=*/32.0,
               /*mbr_pct=*/55.0, /*rur_pct=*/40.0});

  // ReCAM [18] — resistive CAM processing-in-storage; enormous array power
  // [fig], no off-chip traffic (in-storage) [cited].
  v.push_back({"ReCAM", AlgorithmFamily::kSmithWaterman,
               /*power_w=*/1300.0, /*throughput_qps=*/3.25e6,
               /*area_mm2=*/1600.0, /*offchip_gb=*/0.0,
               /*mbr_pct=*/35.0, /*rur_pct=*/50.0});

  // RaceLogic [6] — temporal-coding DP accelerator; the fastest platform in
  // Fig. 8b [fig] and the best SW-based design: PIM-Aligner-n improves
  // throughput/Watt over it by 3.1x [ratio] => ~8.4e4 q/s/W.
  v.push_back({"RaceLogic", AlgorithmFamily::kSmithWaterman,
               /*power_w=*/89.0, /*throughput_qps=*/7.49e6,
               /*area_mm2=*/64.0, /*offchip_gb=*/8.0,
               /*mbr_pct=*/45.0, /*rur_pct=*/55.0});

  // GPU — Soap3-dp [5] on a ~250 W discrete GPU [cited TDP class]; 458x
  // below PIM-Aligner-n in throughput/Watt [ratio] => ~570 q/s/W.
  v.push_back({"GPU", AlgorithmFamily::kFmIndex,
               /*power_w=*/250.0, /*throughput_qps=*/1.42e5,
               /*area_mm2=*/561.0, /*offchip_gb=*/120.0,
               /*mbr_pct=*/75.0, /*rur_pct=*/20.0});

  // FPGA [9] — Arram et al.; 43.8x below PIM-Aligner-n [ratio] => ~6.0e3
  // q/s/W at a ~28 W board power [fig].
  v.push_back({"FPGA", AlgorithmFamily::kFmIndex,
               /*power_w=*/28.0, /*throughput_qps=*/1.67e5,
               /*area_mm2=*/650.0, /*offchip_gb=*/64.0,
               /*mbr_pct=*/70.0, /*rur_pct=*/25.0});

  // ASIC [8] — Wu et al., 135 mW fully-integrated NGS processor [cited];
  // 1 GB off-chip after compression [cited in the PIM-Aligner text];
  // PIM-Aligner-n is ~2x better in throughput/Watt [ratio] => ~1.3e5 q/s/W,
  // and ~9x better in throughput/Watt/mm2 [ratio] => ~9.5 mm2 die.
  v.push_back({"ASIC", AlgorithmFamily::kFmIndex,
               /*power_w=*/0.135, /*throughput_qps=*/1.76e4,
               /*area_mm2=*/9.5, /*offchip_gb=*/1.0,
               /*mbr_pct=*/40.0, /*rur_pct=*/55.0});

  // AligneR [3] — ReRAM FM-index PIM; 1.9x below PIM-Aligner in
  // throughput/Watt/mm2 [ratio] => ~3.1 mm2 compute region; its MBR is
  // called out as higher than PIM-Aligner's "owing to its unbalanced
  // computation and data movement" but still < 25% [fig].
  v.push_back({"AligneR", AlgorithmFamily::kFmIndex,
               /*power_w=*/13.0, /*throughput_qps=*/2.6e6,
               /*area_mm2=*/3.1, /*offchip_gb=*/0.0,
               /*mbr_pct=*/24.0, /*rur_pct=*/65.0});

  // AlignS [13] — the SOT-MRAM predecessor with two SAs and a two-cycle add:
  // least power among PIMs and the best throughput/Watt in Fig. 9a [fig]
  // (the paper explains PIM-Aligner's third SA costs power but buys
  // single-cycle adds and hence throughput).
  v.push_back({"AlignS", AlgorithmFamily::kFmIndex,
               /*power_w=*/6.67, /*throughput_qps=*/2.2e6,
               /*area_mm2=*/3.4, /*offchip_gb=*/0.0,
               /*mbr_pct=*/20.0, /*rur_pct=*/72.0});

  return v;
}

AcceleratorMetrics baseline(const std::string& name) {
  for (const auto& m : baseline_accelerators()) {
    if (m.name == name) return m;
  }
  throw std::out_of_range("baseline: unknown accelerator " + name);
}

}  // namespace pim::accel
