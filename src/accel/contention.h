// Group-occupancy Monte Carlo — the queueing argument behind the RUR model.
//
// Reads jump between sub-array tiles as their SA intervals move, so at any
// instant the R in-flight reads occupy a random subset of the G pipeline
// groups. The fraction of groups doing useful work is the occupancy of a
// balls-in-bins process: E[occupancy] = 1 - (1 - 1/G)^R -> 1 - e^(-R/G).
// The chip model uses the closed form with R/G = Pd; this module provides
// both the closed form and a Monte-Carlo validation of it.
#pragma once

#include <cstdint>

namespace pim::accel {

/// Closed-form expected fraction of occupied groups.
double expected_occupancy(std::uint64_t groups, std::uint64_t resident_reads);

/// Asymptotic form 1 - e^(-load) with load = resident_reads / groups.
double expected_occupancy_asymptotic(double load);

struct OccupancySample {
  double mean_occupancy = 0.0;
  double stddev = 0.0;
};

/// Monte-Carlo estimate: `trials` rounds of throwing `resident_reads` reads
/// uniformly over `groups` groups and measuring the occupied fraction.
OccupancySample simulate_occupancy(std::uint64_t groups,
                                   std::uint64_t resident_reads,
                                   std::size_t trials, std::uint64_t seed);

}  // namespace pim::accel
