// Measured per-chip load for the chip/contention models (S38).
//
// The analytic chip model (pim_aligner_model) and the closed-loop chip
// simulator (chip_sim) both assume a per-read LFM demand (the paper's
// stage-mix average) and a uniform spread of work over chips. A sharded run
// (align::ShardedEngine / hw::PimChipFleet) measures both: per-chip read
// counts, hit skew, wall time, and — on PIM chips — the exact hardware LFM
// tally. This module converts those measurements into model configs, so
// chip-scale projections can be driven by observed load instead of assumed
// averages, and the skew across chips becomes visible in the projections.
#pragma once

#include <cstdint>
#include <vector>

#include "src/accel/chip_sim.h"
#include "src/accel/pim_aligner_model.h"
#include "src/align/sharded_engine.h"

namespace pim::hw {
class PimChipFleet;
}

namespace pim::accel {

/// One chip's measured load from a sharded batch.
struct MeasuredChipLoad {
  std::size_t chip = 0;
  std::uint64_t reads = 0;
  std::uint64_t hits = 0;
  /// Hardware LFM calls this chip executed; 0 for software shards (no
  /// hardware tally), in which case consumers keep their assumed demand.
  std::uint64_t lfm_calls = 0;
  double wall_ms = 0.0;
  /// Host->chip staging measured by the fleet's TransferModel (S43); zero
  /// for software shards and transfer-disabled fleets. staging_ns is the
  /// charged transfer time, stall_ns the part double-buffering could not
  /// hide under compute.
  std::uint64_t staged_bytes = 0;
  double staging_ns = 0.0;
  double stall_ns = 0.0;

  /// Average LFM invocations per read; `fallback` when unmeasured.
  double lfm_per_read(double fallback = 0.0) const;
};

/// Shard breakdown -> load rows (software shards: no LFM tally).
std::vector<MeasuredChipLoad> measured_loads(
    const std::vector<align::ShardStats>& shards);

/// Fleet breakdown -> load rows with each chip's hardware LFM tally. Call
/// after engine().align_batch (and after a reset_stats() at batch entry so
/// the tallies cover exactly that batch).
std::vector<MeasuredChipLoad> measured_loads(const hw::PimChipFleet& fleet);

/// Proportional shard reweighting from the measured wall-time skew of a
/// sharded run: weight_c ∝ reads_c / wall_ms_c (measured throughput), so
/// the next batch's boundaries equalize expected wall time instead of read
/// counts. Chips without a usable measurement (no reads, or wall below
/// timer resolution) get the mean measured throughput. Returns normalized
/// weights (sum 1) for align::ShardedEngine::set_shard_weights — or uniform
/// weights when nothing was measured. ShardedOptions::rebalance applies the
/// same reweighting automatically between streaming batches.
std::vector<double> rebalanced_shard_weights(
    const std::vector<MeasuredChipLoad>& loads);

/// Chip-sim config whose per-read service demand and horizon come from the
/// measured chip instead of the assumed averages. Fields of `base` the
/// measurement cannot inform (groups, service_ns, seed) pass through.
ChipSimConfig chip_sim_from_measured(const MeasuredChipLoad& load,
                                     ChipSimConfig base = {});

/// Chip-model config whose LFM stage mix is calibrated from the measured
/// demand: lfm_stage_mix = measured lfm_per_read / (2 * read_length).
/// Unmeasured loads (lfm_calls == 0) return `base` unchanged.
ChipModelConfig chip_model_from_measured(const MeasuredChipLoad& load,
                                         std::uint32_t read_length,
                                         ChipModelConfig base = {});

}  // namespace pim::accel
