#include "src/accel/chip_sim.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "src/util/stats.h"

namespace pim::accel {

namespace {

struct Event {
  double time_ns;
  std::uint32_t read_id;
  bool operator>(const Event& other) const { return time_ns > other.time_ns; }
};

}  // namespace

ChipSimReport simulate_chip(const ChipSimConfig& config) {
  if (config.groups == 0 || config.concurrent_reads == 0 ||
      config.lfm_per_read == 0 || config.service_ns <= 0.0 ||
      config.reads_to_complete == 0) {
    throw std::invalid_argument("simulate_chip: bad config");
  }
  util::Xoshiro256 rng(config.seed);

  // Per-read state: remaining LFMs and start time of the current pass.
  std::vector<std::uint32_t> remaining(config.concurrent_reads,
                                       config.lfm_per_read);
  std::vector<double> started(config.concurrent_reads, 0.0);
  std::vector<double> group_free(config.groups, 0.0);
  std::vector<double> group_busy(config.groups, 0.0);

  // Min-heap of "read ready to issue its next LFM" events.
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> ready;
  for (std::uint32_t r = 0; r < config.concurrent_reads; ++r) {
    ready.push(Event{0.0, r});
  }

  std::vector<double> latencies;
  latencies.reserve(config.reads_to_complete);
  std::uint64_t completed = 0;
  double wall = 0.0;

  while (completed < config.reads_to_complete) {
    const Event ev = ready.top();
    ready.pop();
    const std::uint32_t r = ev.read_id;
    // Issue one LFM at a random group (FIFO: service starts when the group
    // frees up).
    const auto g = static_cast<std::size_t>(rng.bounded(config.groups));
    const double start = std::max(ev.time_ns, group_free[g]);
    const double end = start + config.service_ns;
    group_free[g] = end;
    group_busy[g] += config.service_ns;
    wall = std::max(wall, end);

    if (--remaining[r] == 0) {
      latencies.push_back(end - started[r]);
      ++completed;
      // The slot recirculates immediately with a fresh read.
      remaining[r] = config.lfm_per_read;
      started[r] = end;
    }
    ready.push(Event{end, r});
  }

  ChipSimReport report;
  report.wall_ns = wall;
  report.reads_completed = completed;
  report.throughput_qps = static_cast<double>(completed) / (wall * 1e-9);
  double busy_total = 0.0;
  for (const auto b : group_busy) busy_total += b;
  report.mean_group_utilization =
      busy_total / (wall * static_cast<double>(config.groups));
  double latency_sum = 0.0;
  for (const auto l : latencies) latency_sum += l;
  report.mean_read_latency_ns =
      latency_sum / static_cast<double>(latencies.size());
  report.p50_latency_ns = util::quantile(latencies, 0.50);
  report.p95_latency_ns = util::quantile(latencies, 0.95);
  report.p99_latency_ns = util::quantile(latencies, 0.99);
  // Little's law: C = X * R with X in reads/ns.
  const double x_per_ns = static_cast<double>(completed) / wall;
  const double implied_c = x_per_ns * report.mean_read_latency_ns;
  report.littles_law_residual =
      std::abs(implied_c - static_cast<double>(config.concurrent_reads)) /
      static_cast<double>(config.concurrent_reads);
  return report;
}

}  // namespace pim::accel
