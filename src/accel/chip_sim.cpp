#include "src/accel/chip_sim.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>
#include <utility>

#include "src/util/stats.h"

namespace pim::accel {

namespace {

struct Event {
  double time_ns;
  std::uint32_t read_id;
  bool operator>(const Event& other) const { return time_ns > other.time_ns; }
};

}  // namespace

ChipSimReport simulate_chip(const ChipSimConfig& config) {
  if (config.groups == 0 || config.concurrent_reads == 0 ||
      config.lfm_per_read == 0 || config.service_ns <= 0.0 ||
      config.reads_to_complete == 0 ||
      !(config.warmup_fraction >= 0.0 && config.warmup_fraction < 1.0)) {
    throw std::invalid_argument("simulate_chip: bad config");
  }
  util::Xoshiro256 rng(config.seed);

  // S43 warm-up: the first completions ride the t = 0 cold-start ramp and
  // are discarded; tallies start at the end of the last warm-up read.
  const auto warmup_target = static_cast<std::uint64_t>(std::ceil(
      config.warmup_fraction * static_cast<double>(config.reads_to_complete)));
  const std::uint64_t total_target = warmup_target + config.reads_to_complete;

  // Per-read state: remaining LFMs and start time of the current pass.
  std::vector<std::uint32_t> remaining(config.concurrent_reads,
                                       config.lfm_per_read);
  std::vector<double> started(config.concurrent_reads, 0.0);
  std::vector<double> group_free(config.groups, 0.0);
  double busy_measured = 0.0;  // service time inside the measurement window
  // Services issued before t_warm is known; clipped against it afterwards.
  // (Service end times are not monotone in issue order, so a service issued
  // during warm-up can spill past t_warm — the spill counts as measured.)
  std::vector<std::pair<double, double>> pending_busy;

  // Min-heap of "read ready to issue its next LFM" events.
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> ready;
  for (std::uint32_t r = 0; r < config.concurrent_reads; ++r) {
    ready.push(Event{0.0, r});
  }

  std::vector<double> latencies;
  latencies.reserve(config.reads_to_complete);
  std::uint64_t completed = 0;
  double wall = 0.0;
  double warm_ns = 0.0;  // measurement-window start; 0 until warm-up ends
  bool warm = warmup_target == 0;

  while (completed < total_target) {
    const Event ev = ready.top();
    ready.pop();
    const std::uint32_t r = ev.read_id;
    // Issue one LFM at a random group (FIFO: service starts when the group
    // frees up).
    const auto g = static_cast<std::size_t>(rng.bounded(config.groups));
    const double start = std::max(ev.time_ns, group_free[g]);
    const double end = start + config.service_ns;
    group_free[g] = end;
    if (warm) {
      busy_measured += end - std::max(start, warm_ns);
    } else {
      pending_busy.emplace_back(start, end);
    }
    wall = std::max(wall, end);

    if (--remaining[r] == 0) {
      ++completed;
      if (warm) {
        latencies.push_back(end - started[r]);
      } else if (completed == warmup_target) {
        // Warm-up ends here: clip the buffered services to the window.
        warm = true;
        warm_ns = end;
        for (const auto& [s, e] : pending_busy) {
          if (e > warm_ns) busy_measured += e - std::max(s, warm_ns);
        }
        pending_busy.clear();
        pending_busy.shrink_to_fit();
      }
      // The slot recirculates immediately with a fresh read.
      remaining[r] = config.lfm_per_read;
      started[r] = end;
    }
    ready.push(Event{end, r});
  }

  const std::uint64_t measured = completed - warmup_target;
  const double window_ns = wall - warm_ns;
  ChipSimReport report;
  report.wall_ns = wall;
  report.reads_completed = measured;
  report.warmup_reads = warmup_target;
  report.warmup_ns = warm_ns;
  report.throughput_qps = static_cast<double>(measured) / (window_ns * 1e-9);
  report.mean_group_utilization =
      busy_measured / (window_ns * static_cast<double>(config.groups));
  double latency_sum = 0.0;
  for (const auto l : latencies) latency_sum += l;
  report.mean_read_latency_ns =
      latency_sum / static_cast<double>(latencies.size());
  report.p50_latency_ns = util::quantile(latencies, 0.50);
  report.p95_latency_ns = util::quantile(latencies, 0.95);
  report.p99_latency_ns = util::quantile(latencies, 0.99);
  // Little's law: C = X * R with X in reads/ns, over the measured window.
  const double x_per_ns = static_cast<double>(measured) / window_ns;
  const double implied_c = x_per_ns * report.mean_read_latency_ns;
  report.littles_law_residual =
      std::abs(implied_c - static_cast<double>(config.concurrent_reads)) /
      static_cast<double>(config.concurrent_reads);
  return report;
}

}  // namespace pim::accel
