#include "src/accel/contention.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "src/util/rng.h"
#include "src/util/stats.h"

namespace pim::accel {

double expected_occupancy(std::uint64_t groups, std::uint64_t resident_reads) {
  if (groups == 0) throw std::invalid_argument("expected_occupancy: 0 groups");
  const double miss =
      std::pow(1.0 - 1.0 / static_cast<double>(groups),
               static_cast<double>(resident_reads));
  return 1.0 - miss;
}

double expected_occupancy_asymptotic(double load) {
  return 1.0 - std::exp(-load);
}

OccupancySample simulate_occupancy(std::uint64_t groups,
                                   std::uint64_t resident_reads,
                                   std::size_t trials, std::uint64_t seed) {
  if (groups == 0 || trials == 0) {
    throw std::invalid_argument("simulate_occupancy: bad arguments");
  }
  util::Xoshiro256 rng(seed);
  util::RunningStats stats;
  std::vector<bool> occupied(groups);
  for (std::size_t t = 0; t < trials; ++t) {
    std::fill(occupied.begin(), occupied.end(), false);
    std::uint64_t hit = 0;
    for (std::uint64_t r = 0; r < resident_reads; ++r) {
      const auto g = static_cast<std::size_t>(rng.bounded(groups));
      if (!occupied[g]) {
        occupied[g] = true;
        ++hit;
      }
    }
    stats.add(static_cast<double>(hit) / static_cast<double>(groups));
  }
  return {stats.mean(), stats.stddev()};
}

}  // namespace pim::accel
