#include "src/accel/pim_aligner_model.h"

#include <cmath>
#include <stdexcept>

#include "src/pim/mapping.h"

namespace pim::accel {

AcceleratorMetrics ChipReport::as_metrics(const std::string& name) const {
  AcceleratorMetrics m;
  m.name = name;
  m.family = AlgorithmFamily::kFmIndex;
  m.power_w = power_w;
  m.throughput_qps = throughput_qps;
  m.area_mm2 = engine_area_mm2;
  m.offchip_gb = offchip_gb;
  m.mbr_pct = mbr_pct;
  m.rur_pct = rur_pct;
  return m;
}

PimChipModel::PimChipModel(const hw::TimingEnergyModel& timing,
                           const hw::PipelineConfig& pipeline_config,
                           const ChipModelConfig& config)
    : timing_(&timing),
      pipeline_model_(timing, pipeline_config),
      config_(config) {
  if (config_.pipelines == 0 || config_.read_length == 0) {
    throw std::invalid_argument("PimChipModel: bad provisioning");
  }
}

double PimChipModel::memory_footprint_gb() const {
  const double n = config_.genome_bases;
  const double d =
      static_cast<double>(timing_->cols()) / 2.0;  // checkpoint every row
  const double bwt_bytes = n * 2.0 / 8.0;
  const double mt_bytes = n / d * 4.0 * 4.0;  // 4 nt x 4-byte markers
  const double sa_bytes =
      n * 4.0 / static_cast<double>(config_.sa_sample_rate);
  return (bwt_bytes + mt_bytes + sa_bytes) / 1e9;
}

std::uint64_t PimChipModel::num_tiles() const {
  const hw::ZoneLayout layout;  // default geometry
  const double per_tile =
      static_cast<double>(layout.bps_per_tile(timing_->cols()));
  return static_cast<std::uint64_t>(std::ceil(config_.genome_bases / per_tile));
}

ChipReport PimChipModel::evaluate(std::uint32_t pd) const {
  if (pd == 0) throw std::invalid_argument("PimChipModel: Pd must be >= 1");
  ChipReport report;
  report.pd = pd;
  report.pipeline = pipeline_model_.evaluate(pd);
  report.num_tiles = num_tiles();
  report.memory_gb = memory_footprint_gb();
  // Queries stream in at 2 bits/bp and results stream out; the index never
  // leaves the memory, so off-chip traffic rounds to zero on the Fig. 10a
  // axis (0.25 GB of reads for the 10M-read workload).
  report.offchip_gb = 0.0;

  report.lfm_per_read =
      2.0 * static_cast<double>(config_.read_length) * config_.lfm_stage_mix;

  const double lfm_rate_total =
      static_cast<double>(config_.pipelines) *
      report.pipeline.lfm_rate_per_group_hz;
  report.throughput_qps = lfm_rate_total / report.lfm_per_read;

  const double dynamic_w =
      lfm_rate_total * report.pipeline.energy_per_lfm_pj * 1e-12;
  const double standby_w =
      report.memory_gb * config_.memory_standby_w_per_gb;
  const double duplication_w =
      static_cast<double>(pd - 1) * config_.duplication_w_per_extra_pd;
  const double dpu_w = static_cast<double>(config_.pipelines) *
                       static_cast<double>(pd) *
                       config_.dpu_w_per_pipeline_per_pd;
  report.power_w = standby_w + duplication_w + dpu_w +
                   config_.controller_base_w + dynamic_w;

  report.engine_area_mm2 =
      static_cast<double>(config_.pipelines) *
          (static_cast<double>(pd) * timing_->subarray_area_mm2() +
           config_.dpu_area_mm2);

  report.mbr_pct = report.pipeline.movement_fraction * 100.0;
  report.rur_pct = report.pipeline.utilization * 100.0;

  report.energy_per_read_uj =
      report.throughput_qps > 0.0
          ? report.power_w / report.throughput_qps * 1e6
          : 0.0;
  return report;
}

}  // namespace pim::accel
