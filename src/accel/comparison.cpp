#include "src/accel/comparison.h"

#include <stdexcept>

namespace pim::accel {

const AcceleratorMetrics& ComparisonTable::row(const std::string& name) const {
  for (const auto& r : rows) {
    if (r.name == name) return r;
  }
  throw std::out_of_range("ComparisonTable: unknown accelerator " + name);
}

ComparisonTable build_comparison(const PimChipModel& model) {
  ComparisonTable table;
  table.rows = baseline_accelerators();
  table.pim_n = model.evaluate(1);
  table.pim_p = model.evaluate(2);
  table.rows.push_back(table.pim_n.as_metrics("PIM-Aligner-n"));
  table.rows.push_back(table.pim_p.as_metrics("PIM-Aligner-p"));
  return table;
}

ComparisonTable build_default_comparison() {
  static const hw::TimingEnergyModel timing;  // default 512x256 organisation
  const PimChipModel model(timing);
  return build_comparison(model);
}

HeadlineRatios compute_headline_ratios(const ComparisonTable& table) {
  HeadlineRatios r;
  const auto& pim_n = table.row("PIM-Aligner-n");
  const auto& pim_p = table.row("PIM-Aligner-p");
  r.tpw_vs_racelogic =
      pim_n.throughput_per_watt() / table.row("RaceLogic").throughput_per_watt();
  r.tpw_vs_asic =
      pim_n.throughput_per_watt() / table.row("ASIC").throughput_per_watt();
  r.tpw_vs_fpga =
      pim_n.throughput_per_watt() / table.row("FPGA").throughput_per_watt();
  r.tpw_vs_gpu =
      pim_n.throughput_per_watt() / table.row("GPU").throughput_per_watt();
  r.tpwa_vs_asic = pim_p.throughput_per_watt_per_mm2() /
                   table.row("ASIC").throughput_per_watt_per_mm2();
  r.tpwa_vs_aligner = pim_p.throughput_per_watt_per_mm2() /
                      table.row("AligneR").throughput_per_watt_per_mm2();
  r.pipeline_gain = pim_p.throughput_qps / pim_n.throughput_qps;
  return r;
}

}  // namespace pim::accel
