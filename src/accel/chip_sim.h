// Time-domain chip simulation — a closed queueing network of pipeline
// groups.
//
// The analytic chip model treats throughput as pipelines x (1/ii) and RUR
// as static occupancy. This simulator checks both dynamically: C reads
// circulate (closed-loop) over G pipeline groups; each LFM is a service of
// duration ii at a uniformly random group (the SA-interval jumps of
// backward search make successive LFMs effectively random across slices);
// groups serve FIFO. Outputs: sustained throughput, per-group utilization,
// and the read-latency distribution — plus a Little's-law consistency check
// (C = X * R) that ties the three together.
#pragma once

#include <cstdint>
#include <vector>

#include "src/util/rng.h"

namespace pim::accel {

struct ChipSimConfig {
  std::uint32_t groups = 32;          ///< Pipeline groups on the chip.
  std::uint32_t concurrent_reads = 64;  ///< Closed-loop population C.
  std::uint32_t lfm_per_read = 300;
  double service_ns = 16.0;           ///< Initiation interval per LFM.
  std::uint32_t reads_to_complete = 2000;  ///< Measured completions.
  std::uint64_t seed = 1;
  /// Warm-up discard (S43): all C closed-loop reads start at t = 0, so the
  /// first completions ride the cold-start ramp — zero queueing at first,
  /// then synchronized contention — which biased throughput, latency, AND
  /// the Little's-law residual toward the transient. The simulator now
  /// completes an extra ceil(fraction x reads_to_complete) reads first and
  /// discards them: tallies (throughput, utilization, latencies, residual)
  /// cover only the steady-state window after the last warm-up completion.
  /// 0 restores the pre-S43 cold-start tallies. Must be in [0, 1).
  double warmup_fraction = 0.1;
};

struct ChipSimReport {
  double wall_ns = 0.0;               ///< Full run, including warm-up.
  std::uint64_t reads_completed = 0;  ///< Measured (post-warm-up) reads.
  std::uint64_t warmup_reads = 0;     ///< Discarded ramp completions.
  double warmup_ns = 0.0;             ///< Measurement-window start time.
  double throughput_qps = 0.0;        ///< Over the measurement window.
  double mean_group_utilization = 0.0;  ///< Over the measurement window.
  double mean_read_latency_ns = 0.0;
  double p50_latency_ns = 0.0;
  double p95_latency_ns = 0.0;
  double p99_latency_ns = 0.0;
  /// |C - X*R| / C — Little's-law residual; ~0 in steady state (and post-
  /// S43 measured only over the steady-state window, so the test bound is
  /// tight).
  double littles_law_residual = 0.0;
};

/// Run the closed-loop simulation. Deterministic in the seed.
ChipSimReport simulate_chip(const ChipSimConfig& config);

}  // namespace pim::accel
