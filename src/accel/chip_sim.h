// Time-domain chip simulation — a closed queueing network of pipeline
// groups.
//
// The analytic chip model treats throughput as pipelines x (1/ii) and RUR
// as static occupancy. This simulator checks both dynamically: C reads
// circulate (closed-loop) over G pipeline groups; each LFM is a service of
// duration ii at a uniformly random group (the SA-interval jumps of
// backward search make successive LFMs effectively random across slices);
// groups serve FIFO. Outputs: sustained throughput, per-group utilization,
// and the read-latency distribution — plus a Little's-law consistency check
// (C = X * R) that ties the three together.
#pragma once

#include <cstdint>
#include <vector>

#include "src/util/rng.h"

namespace pim::accel {

struct ChipSimConfig {
  std::uint32_t groups = 32;          ///< Pipeline groups on the chip.
  std::uint32_t concurrent_reads = 64;  ///< Closed-loop population C.
  std::uint32_t lfm_per_read = 300;
  double service_ns = 16.0;           ///< Initiation interval per LFM.
  std::uint32_t reads_to_complete = 2000;  ///< Simulation horizon.
  std::uint64_t seed = 1;
};

struct ChipSimReport {
  double wall_ns = 0.0;
  std::uint64_t reads_completed = 0;
  double throughput_qps = 0.0;
  double mean_group_utilization = 0.0;
  double mean_read_latency_ns = 0.0;
  double p50_latency_ns = 0.0;
  double p95_latency_ns = 0.0;
  double p99_latency_ns = 0.0;
  /// |C - X*R| / C — Little's-law residual; ~0 in steady state.
  double littles_law_residual = 0.0;
};

/// Run the closed-loop simulation. Deterministic in the seed.
ChipSimReport simulate_chip(const ChipSimConfig& config);

}  // namespace pim::accel
