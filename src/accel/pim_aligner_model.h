// Chip-level PIM-Aligner performance/power/area model — the "behavioral
// simulator" of the paper's evaluation framework, fed by the per-operation
// costs of the TimingEnergyModel and the stage analysis of the
// PipelineModel, scaled analytically to the paper's workload (10M 100-bp
// reads against the 3.2 Gbp Hg19 reference).
//
// Model structure:
//   throughput = pipelines * (1 / initiation_interval(Pd)) / LFMs_per_read
//   power      = memory standby (BWT+MT+SA regions)
//              + duplication power (method-II copies, per extra Pd)
//              + DPU power (per pipeline, per Pd)
//              + controller/routing base
//              + dynamic (LFM rate * energy per LFM)
//   area       = active compute engine: pipelines * Pd sub-arrays + DPUs
//                (the memory region exists anyway — that is the PIM premise;
//                Fig. 9b normalises by the silicon added for computing).
#pragma once

#include <cstdint>

#include "src/accel/metrics.h"
#include "src/pim/pipeline.h"
#include "src/pim/timing_energy.h"

namespace pim::accel {

struct ChipModelConfig {
  // Workload (the paper's evaluation setup).
  double genome_bases = 3.2e9;
  std::uint32_t read_length = 100;
  /// Average LFM invocations per read: 2 per backward-extension step (low
  /// and high), times a stage-mix factor covering the ~30% of reads that
  /// enter the backtracking stage (their extra search states amortised here).
  double lfm_stage_mix = 1.5;

  // Provisioning.
  std::uint32_t pipelines = 32;       ///< Concurrent pipeline groups.
  std::uint32_t sa_sample_rate = 1;   ///< Full SA, as the paper stores it.

  // Power calibration (documented in DESIGN.md; overridable).
  double memory_standby_w_per_gb = 0.857;  ///< NVM periphery standby.
  double duplication_w_per_extra_pd = 6.75;
  double dpu_w_per_pipeline_per_pd = 0.11;
  double controller_base_w = 1.5;

  // Area calibration.
  double dpu_area_mm2 = 0.02;  ///< Per pipeline group (45 nm CMOS).
};

struct ChipReport {
  std::uint32_t pd = 1;
  double throughput_qps = 0.0;
  double power_w = 0.0;
  double engine_area_mm2 = 0.0;
  double memory_gb = 0.0;       ///< Resident BWT+MT+SA footprint (~12-14 GB).
  double offchip_gb = 0.0;      ///< Streams only the queries: ~0.
  double mbr_pct = 0.0;
  double rur_pct = 0.0;
  double energy_per_read_uj = 0.0;
  double lfm_per_read = 0.0;
  std::uint64_t num_tiles = 0;
  hw::PipelineReport pipeline;

  /// As an AcceleratorMetrics row for the comparison tables.
  AcceleratorMetrics as_metrics(const std::string& name) const;
};

class PimChipModel {
 public:
  PimChipModel(const hw::TimingEnergyModel& timing,
               const hw::PipelineConfig& pipeline_config = {},
               const ChipModelConfig& config = {});

  ChipReport evaluate(std::uint32_t pd) const;

  /// Memory footprint of the persisted structures at the configured genome
  /// size: 2-bit BWT + 4x32-bit markers every d + 32-bit SA entries.
  double memory_footprint_gb() const;

  /// Number of computational sub-array tiles covering the BWT.
  std::uint64_t num_tiles() const;

  /// The compute-support area overhead fraction (the paper's <10% claim).
  double compute_area_overhead_fraction() const {
    return timing_->compute_area_overhead_fraction();
  }

  const ChipModelConfig& config() const { return config_; }

 private:
  const hw::TimingEnergyModel* timing_;
  hw::PipelineModel pipeline_model_;
  ChipModelConfig config_;
};

}  // namespace pim::accel
