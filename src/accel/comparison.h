// Comparison harness: assembles the 10-platform table of Figures 8-10
// (8 literature baselines + PIM-Aligner-n at Pd=1 + PIM-Aligner-p at Pd=2)
// and computes the headline ratios the paper states in prose, so every
// bench can print paper-vs-measured side by side.
#pragma once

#include <string>
#include <vector>

#include "src/accel/baseline_models.h"
#include "src/accel/pim_aligner_model.h"

namespace pim::accel {

struct ComparisonTable {
  std::vector<AcceleratorMetrics> rows;  ///< Paper figure order.
  ChipReport pim_n;                      ///< Pd=1 (method-I baseline).
  ChipReport pim_p;                      ///< Pd=2 (pipelined).

  const AcceleratorMetrics& row(const std::string& name) const;
};

/// Build the full table from a chip model (defaults reproduce the paper's
/// configuration).
ComparisonTable build_comparison(const PimChipModel& model);
ComparisonTable build_default_comparison();

/// The headline ratios of the abstract / Section VI, measured from a table.
struct HeadlineRatios {
  double tpw_vs_racelogic = 0.0;  ///< Paper: ~3.1x (PIM-n vs best SW).
  double tpw_vs_asic = 0.0;       ///< Paper: ~2x.
  double tpw_vs_fpga = 0.0;       ///< Paper: 43.8x.
  double tpw_vs_gpu = 0.0;        ///< Paper: 458x.
  double tpwa_vs_asic = 0.0;      ///< Paper: ~9x (per-mm2, PIM-p).
  double tpwa_vs_aligner = 0.0;   ///< Paper: ~1.9x.
  double pipeline_gain = 0.0;     ///< Paper: ~1.4x (Pd=2 over baseline).
};

HeadlineRatios compute_headline_ratios(const ComparisonTable& table);

}  // namespace pim::accel
