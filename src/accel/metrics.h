// Accelerator comparison metrics — the axes of Figures 8, 9 and 10.
#pragma once

#include <string>

namespace pim::accel {

enum class AlgorithmFamily {
  kSmithWaterman,  ///< Dynamic-programming platforms (Darwin/ReCAM/RaceLogic).
  kFmIndex,        ///< BWT/FM-index platforms (GPU/FPGA/ASIC/PIMs).
};

struct AcceleratorMetrics {
  std::string name;
  AlgorithmFamily family = AlgorithmFamily::kFmIndex;
  double power_w = 0.0;           ///< Fig. 8a.
  double throughput_qps = 0.0;    ///< Fig. 8b (queries/second).
  double area_mm2 = 0.0;          ///< Compute-engine silicon, Fig. 9b.
  double offchip_gb = 0.0;        ///< Fig. 10a.
  double mbr_pct = 0.0;           ///< Memory Bottleneck Ratio, Fig. 10b.
  double rur_pct = 0.0;           ///< Resource Utilization Ratio, Fig. 10c.

  double throughput_per_watt() const {
    return power_w > 0.0 ? throughput_qps / power_w : 0.0;
  }
  double throughput_per_watt_per_mm2() const {
    return (power_w > 0.0 && area_mm2 > 0.0)
               ? throughput_qps / power_w / area_mm2
               : 0.0;
  }
};

}  // namespace pim::accel
