#include "src/accel/measured_load.h"

#include <algorithm>

#include "src/pim/pim_fleet.h"

namespace pim::accel {

double MeasuredChipLoad::lfm_per_read(double fallback) const {
  if (lfm_calls == 0 || reads == 0) return fallback;
  return static_cast<double>(lfm_calls) / static_cast<double>(reads);
}

std::vector<MeasuredChipLoad> measured_loads(
    const std::vector<align::ShardStats>& shards) {
  std::vector<MeasuredChipLoad> loads;
  loads.reserve(shards.size());
  for (const auto& shard : shards) {
    MeasuredChipLoad load;
    load.chip = shard.shard;
    load.reads = shard.reads;
    load.hits = shard.hits;
    load.wall_ms = shard.wall_ms;
    loads.push_back(load);
  }
  return loads;
}

std::vector<MeasuredChipLoad> measured_loads(const hw::PimChipFleet& fleet) {
  auto loads = measured_loads(fleet.engine().shard_stats());
  const hw::TransferReport transfer = fleet.transfer_report();
  for (std::size_t c = 0; c < loads.size() && c < fleet.num_chips(); ++c) {
    loads[c].lfm_calls = fleet.chip_stats(c).lfm_calls;
    if (c < transfer.chips.size()) {
      loads[c].staged_bytes = transfer.chips[c].staged_bytes;
      loads[c].staging_ns = transfer.chips[c].staging_ns;
      loads[c].stall_ns = transfer.chips[c].stall_ns;
    }
  }
  return loads;
}

std::vector<double> rebalanced_shard_weights(
    const std::vector<MeasuredChipLoad>& loads) {
  const std::size_t num = loads.size();
  std::vector<double> tput(num, 0.0);
  double sum = 0.0;
  std::size_t measured = 0;
  for (std::size_t c = 0; c < num; ++c) {
    if (loads[c].reads > 0 && loads[c].wall_ms > 1e-6) {
      tput[c] = static_cast<double>(loads[c].reads) / loads[c].wall_ms;
      sum += tput[c];
      ++measured;
    }
  }
  std::vector<double> weights(num,
                              num ? 1.0 / static_cast<double>(num) : 0.0);
  if (measured == 0) return weights;
  const double mean = sum / static_cast<double>(measured);
  const double total = sum + mean * static_cast<double>(num - measured);
  for (std::size_t c = 0; c < num; ++c) {
    weights[c] = (tput[c] > 0.0 ? tput[c] : mean) / total;
  }
  return weights;
}

ChipSimConfig chip_sim_from_measured(const MeasuredChipLoad& load,
                                     ChipSimConfig base) {
  if (load.reads > 0) {
    base.reads_to_complete = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(load.reads, UINT32_MAX));
  }
  const double demand =
      load.lfm_per_read(static_cast<double>(base.lfm_per_read));
  base.lfm_per_read = static_cast<std::uint32_t>(
      std::max(1.0, std::min(demand, 4.0e9)));
  return base;
}

ChipModelConfig chip_model_from_measured(const MeasuredChipLoad& load,
                                         std::uint32_t read_length,
                                         ChipModelConfig base) {
  const double demand = load.lfm_per_read();
  if (demand <= 0.0 || read_length == 0) return base;
  base.read_length = read_length;
  base.lfm_stage_mix = demand / (2.0 * static_cast<double>(read_length));
  return base;
}

}  // namespace pim::accel
